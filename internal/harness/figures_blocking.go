package harness

import (
	"fmt"
	"strings"
	"time"

	"streambalance/internal/sim"
	"streambalance/internal/stats"
)

// Fig2Report reproduces Figure 2: the cumulative blocking time of one
// connection over time (with the transport layer's periodic resets) and its
// first derivative, the blocking rate.
type Fig2Report struct {
	Cumulative *stats.Series // seconds of accumulated blocking
	Rate       *stats.Series // seconds blocked per second
}

// String renders both series.
func (r Fig2Report) String() string {
	var b strings.Builder
	b.WriteString("== Figure 2: cumulative blocking time and blocking rate ==\n")
	set := stats.NewSeriesSet("fig2")
	for _, p := range r.Cumulative.Points() {
		set.Get("cumulative(s)").Record(p.At, p.Value)
	}
	for _, p := range r.Rate.Points() {
		set.Get("rate(s/s)").Record(p.At, p.Value)
	}
	b.WriteString(set.Table(2 * time.Second))
	return b.String()
}

// Fig2Blocking runs a two-connection region where connection 0 is heavily
// loaded and records its cumulative blocking counter, resetting it
// periodically exactly as the data transport layer does.
func Fig2Blocking(duration time.Duration) (Fig2Report, error) {
	if duration <= 0 {
		duration = 60 * time.Second
	}
	report := Fig2Report{
		Cumulative: stats.NewSeries("cumulative"),
		Rate:       stats.NewSeries("rate"),
	}
	resetEvery := 16 * time.Second
	cumulative := 0.0
	lastReset := time.Duration(0)
	hosts := HostsForPEs(2)
	pes := PlaceAcrossHosts(2, hosts, func(j int) sim.LoadSchedule {
		if j == 0 {
			return sim.ConstantLoad(10)
		}
		return sim.LoadSchedule{}
	})
	s, err := sim.New(sim.Config{
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 1000,
		Duration: duration,
		Observer: func(sn sim.Snapshot) {
			// Reconstruct the transport's cumulative counter from the
			// sampled rates, applying the periodic reset.
			if sn.Now-lastReset >= resetEvery {
				cumulative = 0
				lastReset = sn.Now
			}
			cumulative += sn.BlockingRates[0] * 1.0 // one-second intervals
			report.Cumulative.Record(sn.Now, cumulative)
			report.Rate.Record(sn.Now, sn.BlockingRates[0])
		},
	})
	if err != nil {
		return Fig2Report{}, err
	}
	if _, err := s.Run(); err != nil {
		return Fig2Report{}, err
	}
	return report, nil
}

// Fig5Split is one fixed allocation split of the Figure 5 experiment.
type Fig5Split struct {
	// Share is connection 0's fixed allocation (units of 0.1%).
	Share int
	// MeanRate is connection 0's mean blocking rate over the run.
	MeanRate float64
	// CoV is the coefficient of variation of that rate — the paper's
	// "stability (flatness)" of the blocking-rate signal.
	CoV float64
	// LeaderShare is the fraction of total blocking carried by the most-
	// blocked connection (1.0 = perfect drafting).
	LeaderShare float64
	// Rates is connection 0's full blocking-rate series.
	Rates *stats.Series
}

// Fig5Report reproduces Figure 5: per-connection blocking rates under fixed
// 80/20, 70/30, 60/40 and 50/50 splits across two equal connections.
type Fig5Report struct {
	Splits []Fig5Split
}

// String renders the summary table.
func (r Fig5Report) String() string {
	var b strings.Builder
	b.WriteString("== Figure 5: blocking rates for fixed allocation weights ==\n")
	fmt.Fprintf(&b, "%8s %14s %10s %14s\n", "split", "mean rate", "CoV", "leader share")
	for _, s := range r.Splits {
		fmt.Fprintf(&b, "%3d/%-4d %14.4f %10.3f %14.2f\n",
			s.Share/10, 100-s.Share/10, s.MeanRate, s.CoV, s.LeaderShare)
	}
	return b.String()
}

// Fig5FixedSplits runs the four fixed splits of Figure 5 on two
// equal-capacity connections with 10,000-multiply tuples.
func Fig5FixedSplits(duration time.Duration) (Fig5Report, error) {
	if duration <= 0 {
		duration = 120 * time.Second
	}
	var report Fig5Report
	for _, share := range []int{800, 700, 600, 500} {
		hosts := HostsForPEs(2)
		sc := Scenario{
			Hosts:    hosts,
			PEs:      PlaceAcrossHosts(2, hosts, nil),
			BaseCost: 10_000,
			Duration: duration,
		}
		pol := sim.NewOracleSchedule([]sim.WeightPhase{
			{From: 0, Weights: []int{share, 1000 - share}},
		}, fmt.Sprintf("split-%d", share))
		rates := stats.NewSeries(fmt.Sprintf("conn0@%d", share))
		var welford stats.Welford
		s, err := sim.New(sim.Config{
			Hosts:    sc.Hosts,
			PEs:      sc.PEs,
			BaseCost: sc.BaseCost,
			Duration: sc.Duration,
			Policy:   pol,
			// Disable counter resets so the rate series is clean for the
			// stability measurement.
			ResetInterval: -1,
			Observer: func(sn sim.Snapshot) {
				rates.Record(sn.Now, sn.BlockingRates[0])
				if sn.Now > 5*time.Second { // skip warm-up
					welford.Add(sn.BlockingRates[0])
				}
			},
		})
		if err != nil {
			return Fig5Report{}, err
		}
		m, err := s.Run()
		if err != nil {
			return Fig5Report{}, err
		}
		var totalBlocking, maxBlocking time.Duration
		for _, d := range m.TotalBlocking {
			totalBlocking += d
			if d > maxBlocking {
				maxBlocking = d
			}
		}
		leader := 0.0
		if totalBlocking > 0 {
			leader = float64(maxBlocking) / float64(totalBlocking)
		}
		report.Splits = append(report.Splits, Fig5Split{
			Share:       share,
			MeanRate:    welford.Mean(),
			CoV:         welford.CoefficientOfVariation(),
			LeaderShare: leader,
			Rates:       rates,
		})
	}
	return report, nil
}

// RerouteRow is one configuration of the Section 4.4 experiment.
type RerouteRow struct {
	BaseCost        int
	Policy          string
	MeanThroughput  float64
	ReroutedPercent float64
}

// RerouteReport reproduces the Section 4.4 inline experiment: transport-
// level re-routing versus round-robin versus the model-driven balancer, at
// base costs 1,000 and 10,000, with one of two PEs at 100x.
type RerouteReport struct {
	Rows []RerouteRow
}

// String renders the comparison.
func (r RerouteReport) String() string {
	var b strings.Builder
	b.WriteString("== Section 4.4: transport-level re-routing ==\n")
	fmt.Fprintf(&b, "%10s %-14s %14s %12s\n", "base cost", "policy", "mean tput/s", "rerouted %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %-14s %14.2f %12.2f\n",
			row.BaseCost, row.Policy, row.MeanThroughput, row.ReroutedPercent)
	}
	return b.String()
}

// Sec44Reroute runs the re-routing experiment. The duration must comfortably
// exceed the slow connection's buffered backlog (64 tuples x 100 x the base
// tuple time) or every alternative is equally gated by the already-buffered
// work — which is precisely the paper's point about blocking being too late
// an indicator.
func Sec44Reroute(duration time.Duration) (RerouteReport, error) {
	if duration <= 0 {
		duration = 300 * time.Second
	}
	var report RerouteReport
	for _, baseCost := range []int{1000, 10_000} {
		hosts := HostsForPEs(2)
		pes := PlaceAcrossHosts(2, hosts, func(j int) sim.LoadSchedule {
			if j == 0 {
				return sim.ConstantLoad(100)
			}
			return sim.LoadSchedule{}
		})
		type variant struct {
			label   string
			reroute bool
			kind    PolicyKind
		}
		for _, v := range []variant{
			{label: "RR", kind: PolicyRR},
			{label: "RR+reroute", kind: PolicyRR, reroute: true},
			{label: "LB-adaptive", kind: PolicyLBAdaptive},
		} {
			sc := Scenario{
				Name:     fmt.Sprintf("sec44/%d/%s", baseCost, v.label),
				Hosts:    hosts,
				PEs:      pes,
				BaseCost: baseCost,
				Duration: duration,
			}
			pol, finish, err := sc.buildPolicy(v.kind)
			if err != nil {
				return RerouteReport{}, err
			}
			s, err := sim.New(sim.Config{
				Hosts:          sc.Hosts,
				PEs:            sc.PEs,
				BaseCost:       sc.BaseCost,
				Duration:       sc.Duration,
				Policy:         pol,
				RerouteOnBlock: v.reroute,
			})
			if err != nil {
				return RerouteReport{}, err
			}
			m, err := s.Run()
			if err != nil {
				return RerouteReport{}, err
			}
			if err := finish(); err != nil {
				return RerouteReport{}, err
			}
			pct := 0.0
			if m.Sent > 0 {
				pct = 100 * float64(m.Rerouted) / float64(m.Sent)
			}
			report.Rows = append(report.Rows, RerouteRow{
				BaseCost:        baseCost,
				Policy:          v.label,
				MeanThroughput:  m.MeanThroughput,
				ReroutedPercent: pct,
			})
		}
	}
	return report, nil
}
