package harness

import (
	"strings"
	"testing"
	"time"
)

func TestAblationDecayRecoversOnlyWithDecay(t *testing.T) {
	report, err := AblationDecay(160 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	static, ok := report.Lookup("no-decay (LB-static)")
	if !ok {
		t.Fatal("missing LB-static row")
	}
	paper, ok := report.Lookup("decay=0.90 (paper)")
	if !ok {
		t.Fatal("missing paper-decay row")
	}
	// Without decay the model never rediscovers the removed load; with the
	// paper's decay the final throughput approaches the 3-PE optimum.
	if paper.FinalThroughput < 1.2*static.FinalThroughput {
		t.Fatalf("decay=0.9 final %.1f vs no-decay %.1f: exploration shows no benefit",
			paper.FinalThroughput, static.FinalThroughput)
	}
	if !strings.Contains(report.String(), "decay=0.90") {
		t.Fatal("rendering missing variants")
	}
}

func TestAblationZeroTrustVariantsComplete(t *testing.T) {
	report, err := AblationZeroTrust(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("got %d variants, want 3", len(report.Rows))
	}
	for _, row := range report.Rows {
		if row.FinalThroughput <= 0 {
			t.Fatalf("variant %q produced no throughput", row.Variant)
		}
	}
}

func TestAblationClustering(t *testing.T) {
	report, err := AblationClustering(40_000)
	if err != nil {
		t.Fatal(err)
	}
	on, ok := report.Lookup("clustering on")
	if !ok {
		t.Fatal("missing clustering-on row")
	}
	off, ok := report.Lookup("clustering off")
	if !ok {
		t.Fatal("missing clustering-off row")
	}
	// Clustering must not be a regression at 32 PEs (the paper's argument
	// is data efficiency; at minimum it must hold its own).
	if on.ExecTime > off.ExecTime*3/2 {
		t.Fatalf("clustering on %v much slower than off %v", on.ExecTime, off.ExecTime)
	}
}

func TestAblationSolverAgreement(t *testing.T) {
	rows, err := AblationSolver()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Agree {
			t.Fatalf("solvers disagree at %d connections", r.Connections)
		}
		if r.FoxIters <= 0 || r.BisectIters <= 0 {
			t.Fatalf("missing work counts: %+v", r)
		}
	}
	if !strings.Contains(RenderSolverRows(rows), "bisect probes") {
		t.Fatal("solver rendering incomplete")
	}
}

func TestExtBursty(t *testing.T) {
	report, err := ExtBursty(160 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[string]Row)
	for _, row := range report.Rows {
		byPolicy[row.Policy] = row
	}
	lb := byPolicy["LB-adaptive"]
	rr := byPolicy["RR"]
	// RR is gated by the slow connection even during bursts; the balancer
	// banks the bursts.
	if lb.MeanThroughput < 2*rr.MeanThroughput {
		t.Fatalf("LB-adaptive %.1f vs RR %.1f under bursts: no banking visible",
			lb.MeanThroughput, rr.MeanThroughput)
	}
	if !strings.Contains(report.String(), "bursty source") {
		t.Fatal("rendering missing header")
	}
}
