// Package harness builds and runs the paper's experiments (Section 6) on the
// discrete-event simulator. Each figure of the evaluation has a
// corresponding Fig* function that constructs the exact workload — hosts, PE
// placement, tuple cost, external-load schedule — runs the policies the
// paper compares (Oracle*, LB-static, LB-adaptive, RR, and the placement
// variants of Figure 11), and returns a report that renders the same rows or
// series the paper plots. cmd/sbench is the CLI front end; bench_test.go at
// the module root exposes each figure as a testing.B benchmark.
//
// Quantities match the paper's conventions: total execution times are
// normalized to the Oracle* run of the same configuration, and final
// throughput is measured over the tail of the run, well after any load
// change. Absolute numbers differ from the paper's (the substrate is a
// simulator with a scaled virtual clock); the shapes — who wins, by what
// factor, where the crossovers fall — are the reproduction target, and
// EXPERIMENTS.md records them side by side.
package harness
