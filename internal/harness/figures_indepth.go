package harness

import (
	"fmt"
	"strings"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
	"streambalance/internal/stats"
)

// InDepthReport is a per-connection time-series report: allocation weight and
// blocking rate per connection over the run, like the paper's in-depth
// figures (8 and 11-top).
type InDepthReport struct {
	Title   string
	Weights *stats.SeriesSet
	Rates   *stats.SeriesSet
	Final   sim.Metrics
	// Clusters holds one row per controller tick (Figure 12's heat map):
	// Clusters[t][j] is the cluster id of channel j at tick t. Nil unless
	// clustering ran.
	Clusters [][]int
}

// String renders the weight and blocking-rate series sampled every 10
// virtual seconds, plus final metrics.
func (r InDepthReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	b.WriteString("-- allocation weights (units of 0.1%) --\n")
	b.WriteString(r.Weights.Table(10 * time.Second))
	b.WriteString("-- blocking rates (s/s) --\n")
	b.WriteString(r.Rates.Table(10 * time.Second))
	fmt.Fprintf(&b, "final weights: %v\n", r.Final.FinalWeights)
	fmt.Fprintf(&b, "final throughput: %.1f tuples/s\n", r.Final.FinalThroughput)
	if r.Clusters != nil {
		b.WriteString("-- clustering heat map (rows = time, cols = channels) --\n")
		b.WriteString(RenderHeatmap(r.Clusters))
	}
	return b.String()
}

// runInDepth executes one scenario under a policy while recording the
// per-connection series.
func runInDepth(title string, sc Scenario, kind PolicyKind) (InDepthReport, error) {
	report := InDepthReport{
		Title:   title,
		Weights: stats.NewSeriesSet("weights"),
		Rates:   stats.NewSeriesSet("rates"),
	}
	pol, finish, err := sc.buildPolicy(kind)
	if err != nil {
		return InDepthReport{}, err
	}
	var balancer *core.Balancer
	if bp, ok := pol.(*sim.BalancerPolicy); ok {
		balancer = bp.Balancer()
	}
	observer := func(sn sim.Snapshot) {
		for j := range sn.Weights {
			name := fmt.Sprintf("conn%d", j)
			report.Weights.Get(name).Record(sn.Now, float64(sn.Weights[j]))
			report.Rates.Get(name).Record(sn.Now, sn.BlockingRates[j])
		}
		if balancer != nil && sc.Clustering {
			if clusters := balancer.LastClusters(); clusters != nil {
				row := make([]int, len(sn.Weights))
				for id, members := range clusters {
					for _, j := range members {
						row[j] = id
					}
				}
				report.Clusters = append(report.Clusters, row)
			}
		}
	}
	s, err := sim.New(sim.Config{
		Hosts:          sc.Hosts,
		PEs:            sc.PEs,
		BaseCost:       sc.BaseCost,
		MultiplyTime:   sc.MultiplyTime,
		Duration:       sc.Duration,
		TotalTuples:    sc.TotalTuples,
		SampleInterval: sc.SampleInterval,
		Policy:         pol,
		Observer:       observer,
	})
	if err != nil {
		return InDepthReport{}, err
	}
	m, err := s.Run()
	if err != nil {
		return InDepthReport{}, err
	}
	if err := finish(); err != nil {
		return InDepthReport{}, err
	}
	report.Final = m
	return report, nil
}

// Fig8Top reproduces the top of Figure 8: three PEs, base cost 1,000
// multiplies, one PE at 100x until the load is removed an eighth through the
// run; LB-adaptive balancing.
func Fig8Top(duration time.Duration) (InDepthReport, error) {
	if duration <= 0 {
		duration = 400 * time.Second
	}
	hosts := HostsForPEs(3)
	pes := PlaceAcrossHosts(3, hosts, func(j int) sim.LoadSchedule {
		if j == 0 {
			return sim.StepLoad(100, 1, duration/8)
		}
		return sim.LoadSchedule{}
	})
	sc := Scenario{
		Name:     "fig8top",
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 1000,
		Duration: duration,
	}
	return runInDepth("Figure 8 (top): 3 PEs, base 1k, conn0 100x removed at 1/8", sc, PolicyLBAdaptive)
}

// Fig8Bottom reproduces the bottom of Figure 8: three equal-capacity PEs,
// base cost 10,000 multiplies, where blocking is unavoidable and the model
// must detect equal capacity despite drafting.
func Fig8Bottom(duration time.Duration) (InDepthReport, error) {
	if duration <= 0 {
		duration = 400 * time.Second
	}
	hosts := HostsForPEs(3)
	sc := Scenario{
		Name:     "fig8bottom",
		Hosts:    hosts,
		PEs:      PlaceAcrossHosts(3, hosts, nil),
		BaseCost: 10_000,
		Duration: duration,
	}
	return runInDepth("Figure 8 (bottom): 3 equal PEs, base 10k", sc, PolicyLBAdaptive)
}

// Fig11Top reproduces the top of Figure 11: one PE on a fast host, one on a
// slow host, base cost 20,000 multiplies, no simulated load.
func Fig11Top(duration time.Duration) (InDepthReport, error) {
	if duration <= 0 {
		duration = 240 * time.Second
	}
	hosts := []sim.HostSpec{sim.FastHost("fast"), sim.SlowHost("slow")}
	sc := Scenario{
		Name:     "fig11top",
		Hosts:    hosts,
		PEs:      []sim.PESpec{{Host: 0}, {Host: 1}},
		BaseCost: 20_000,
		Duration: duration,
	}
	return runInDepth("Figure 11 (top): fast vs slow host, base 20k", sc, PolicyLBAdaptive)
}

// Fig12 reproduces Figure 12: 64 PEs, base cost 60,000 multiplies, three
// load classes (20 PEs at 100x, 20 at 5x, 24 unloaded), clustering on. The
// report includes the clustering heat map.
func Fig12(duration time.Duration) (InDepthReport, error) {
	if duration <= 0 {
		duration = 400 * time.Second
	}
	const n = 64
	hosts := HostsForPEs(n)
	pes := PlaceAcrossHosts(n, hosts, func(j int) sim.LoadSchedule {
		switch {
		case j < 20:
			return sim.ConstantLoad(100)
		case j < 40:
			return sim.ConstantLoad(5)
		default:
			return sim.LoadSchedule{}
		}
	})
	sc := Scenario{
		Name:     "fig12",
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 60_000,
		// The fine virtual clock keeps 100x blocking episodes well under
		// the sampling interval (see heavyMultiplyTime).
		MultiplyTime: heavyMultiplyTime,
		Duration:     duration,
		Clustering:   true,
	}
	return runInDepth("Figure 12: 64 PEs, base 60k, classes 20x100 / 20x5 / 24x1", sc, PolicyLBAdaptive)
}

// RenderHeatmap draws one character per channel per tick, with the cluster
// id mapped to a letter, mirroring the paper's color heat map.
func RenderHeatmap(clusters [][]int) string {
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	for t, row := range clusters {
		// One row per 10 ticks keeps the map readable.
		if t%10 != 0 {
			continue
		}
		fmt.Fprintf(&b, "%4d ", t)
		for _, id := range row {
			b.WriteByte(glyphs[id%len(glyphs)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
