package harness

import (
	"fmt"
	"math"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
)

// PolicyKind identifies one of the paper's compared alternatives.
type PolicyKind int

const (
	// PolicyOracle is Oracle*: the best static split per load phase,
	// derived offline, switched exactly at the load change.
	PolicyOracle PolicyKind = iota + 1
	// PolicyLBStatic is the paper's model without the exploration decay.
	PolicyLBStatic
	// PolicyLBAdaptive is the full model with decay.
	PolicyLBAdaptive
	// PolicyRR is naive round-robin.
	PolicyRR
)

// String returns the paper's label for the policy.
func (k PolicyKind) String() string {
	switch k {
	case PolicyOracle:
		return "Oracle*"
	case PolicyLBStatic:
		return "LB-static"
	case PolicyLBAdaptive:
		return "LB-adaptive"
	case PolicyRR:
		return "RR"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// AllPolicies is the comparison set of Figures 9, 10 and 13.
var AllPolicies = []PolicyKind{PolicyOracle, PolicyLBStatic, PolicyLBAdaptive, PolicyRR}

// Scenario is one experimental configuration: a cluster, a placement of PEs
// with load schedules, a tuple cost and a stopping condition.
type Scenario struct {
	Name     string
	Hosts    []sim.HostSpec
	PEs      []sim.PESpec
	BaseCost int
	// Duration runs for a fixed virtual time (final-throughput mode);
	// TotalTuples runs a fixed workload (execution-time mode). Exactly one
	// should be set.
	Duration    time.Duration
	TotalTuples uint64
	// LoadSwitchAt, when nonzero, is the virtual time at which the PE load
	// schedules change; Oracle* switches its weights at this instant.
	LoadSwitchAt time.Duration
	// LoadSwitchAfterTuples, when nonzero (with PostSwitchLoads), switches
	// the PE loads after that many tuples have been released — the
	// Section 6.3 "an eighth through the experiment" trigger for
	// execution-time runs, where each policy reaches the eighth of its own
	// workload at its own pace. Oracle* switches its weights at the same
	// trigger.
	LoadSwitchAfterTuples uint64
	// PostSwitchLoads are the per-PE schedules in force after the trigger.
	PostSwitchLoads []sim.LoadSchedule
	// SampleInterval overrides the controller cadence (default 1s).
	SampleInterval time.Duration
	// Clustering enables the Section 5.3 clustering in the LB policies.
	Clustering bool
	// MaxStep, when positive, bounds each connection's weight change per
	// rebalance (the paper's incremental change constraints).
	MaxStep int
	// MultiplyTime overrides the virtual duration of one integer multiply
	// (default sim.DefaultMultiplyTime). Heavy-cost figures use a finer
	// scale so that blocking episodes stay short relative to the sampling
	// interval, as they are on real hardware, and the splitter collects
	// data from several connections per interval.
	MultiplyTime time.Duration
	// Observer, when set, receives controller snapshots from RunPolicy.
	Observer sim.Observer
}

// capacities returns each connection's service rate (tuples/second) at
// virtual time t, from the host clock, oversubscription and load schedule —
// the ground truth the Oracle* policy is allowed to know.
func (sc Scenario) capacities(at time.Duration) []float64 {
	return sc.capacitiesWith(func(j int) float64 { return sc.PEs[j].Load.At(at) })
}

// capacitiesPostSwitch returns the service rates under PostSwitchLoads.
func (sc Scenario) capacitiesPostSwitch() []float64 {
	return sc.capacitiesWith(func(j int) float64 { return sc.PostSwitchLoads[j].At(0) })
}

func (sc Scenario) capacitiesWith(mult func(j int) float64) []float64 {
	counts := make([]int, len(sc.Hosts))
	for _, pe := range sc.PEs {
		counts[pe.Host]++
	}
	multiplyTime := sc.MultiplyTime
	if multiplyTime <= 0 {
		multiplyTime = sim.DefaultMultiplyTime
	}
	caps := make([]float64, len(sc.PEs))
	for j, pe := range sc.PEs {
		host := sc.Hosts[pe.Host]
		oversub := 1.0
		if slots := host.ThreadSlots(); counts[pe.Host] > slots {
			oversub = float64(counts[pe.Host]) / float64(slots)
		}
		perTuple := float64(sc.BaseCost) * mult(j) * oversub / host.ClockFactor // multiplies
		seconds := perTuple * multiplyTime.Seconds()
		caps[j] = 1 / seconds
	}
	return caps
}

// OracleWeights converts true service rates into the capacity-proportional
// discrete weight vector: connection j gets units proportional to its rate,
// with rounding residues assigned largest-remainder first so the vector sums
// exactly to units.
func OracleWeights(caps []float64, units int) []int {
	total := 0.0
	for _, c := range caps {
		total += c
	}
	weights := make([]int, len(caps))
	if total <= 0 {
		return core.EvenWeights(len(caps), units)
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, len(caps))
	assigned := 0
	for j, c := range caps {
		exact := float64(units) * c / total
		weights[j] = int(exact)
		assigned += weights[j]
		fracs[j] = frac{idx: j, rem: exact - float64(weights[j])}
	}
	// Largest remainders first (stable by index for determinism).
	for assigned < units {
		best := -1
		for i := range fracs {
			if fracs[i].rem < 0 {
				continue
			}
			if best < 0 || fracs[i].rem > fracs[best].rem {
				best = i
			}
		}
		weights[fracs[best].idx]++
		fracs[best].rem = -1
		assigned++
	}
	return weights
}

// buildPolicy constructs the sim policy for a kind. The cleanup closure
// surfaces any balancer error after the run.
func (sc Scenario) buildPolicy(kind PolicyKind) (sim.Policy, func() error, error) {
	noErr := func() error { return nil }
	switch kind {
	case PolicyRR:
		return sim.RoundRobin{}, noErr, nil
	case PolicyOracle:
		phases := []sim.WeightPhase{{From: 0, Weights: OracleWeights(sc.capacities(0), core.DefaultUnits)}}
		switch {
		case sc.LoadSwitchAfterTuples > 0 && sc.PostSwitchLoads != nil:
			phases = append(phases, sim.WeightPhase{
				FromTuples: sc.LoadSwitchAfterTuples,
				Weights:    OracleWeights(sc.capacitiesPostSwitch(), core.DefaultUnits),
			})
		case sc.LoadSwitchAt > 0:
			phases = append(phases, sim.WeightPhase{
				From:    sc.LoadSwitchAt,
				Weights: OracleWeights(sc.capacities(sc.LoadSwitchAt), core.DefaultUnits),
			})
		}
		return sim.NewOracleSchedule(phases, ""), noErr, nil
	case PolicyLBStatic, PolicyLBAdaptive:
		// The paper's decay removes 10% per one-second iteration; when the
		// controller samples faster, the per-iteration factor is scaled so
		// the unlearning rate per unit time stays the paper's, rather than
		// racing ahead of the once-per-interval data arrival.
		interval := sc.SampleInterval
		if interval <= 0 {
			interval = sim.DefaultSampleInterval
		}
		decay := math.Pow(core.DefaultDecayFactor, interval.Seconds())
		b, err := core.NewBalancer(core.Config{
			Connections:    len(sc.PEs),
			DecayEnabled:   kind == PolicyLBAdaptive,
			DecayFactor:    decay,
			ClusterEnabled: sc.Clustering,
			MaxStep:        sc.MaxStep,
		})
		if err != nil {
			return nil, nil, err
		}
		pol := sim.NewBalancerPolicy(b, kind.String())
		return pol, pol.Err, nil
	default:
		return nil, nil, fmt.Errorf("harness: unknown policy kind %d", kind)
	}
}

// RunPolicy executes the scenario under one policy and returns the
// simulator's metrics.
func RunPolicy(sc Scenario, kind PolicyKind) (sim.Metrics, error) {
	pol, finish, err := sc.buildPolicy(kind)
	if err != nil {
		return sim.Metrics{}, fmt.Errorf("harness: %s: %w", sc.Name, err)
	}
	s, err := sim.New(sim.Config{
		Hosts:                 sc.Hosts,
		PEs:                   sc.PEs,
		BaseCost:              sc.BaseCost,
		MultiplyTime:          sc.MultiplyTime,
		Duration:              sc.Duration,
		TotalTuples:           sc.TotalTuples,
		SampleInterval:        sc.SampleInterval,
		Policy:                pol,
		Observer:              sc.Observer,
		PostSwitchLoads:       sc.PostSwitchLoads,
		LoadSwitchAfterTuples: sc.LoadSwitchAfterTuples,
	})
	if err != nil {
		return sim.Metrics{}, fmt.Errorf("harness: %s: %w", sc.Name, err)
	}
	m, err := s.Run()
	if err != nil {
		return sim.Metrics{}, fmt.Errorf("harness: %s: %w", sc.Name, err)
	}
	if err := finish(); err != nil {
		return sim.Metrics{}, fmt.Errorf("harness: %s: %w", sc.Name, err)
	}
	return m, nil
}

// Row is one policy's outcome in a comparison, in the paper's reporting
// units: execution time normalized to Oracle* and absolute final throughput.
type Row struct {
	Policy          string
	ExecTime        time.Duration
	NormalizedExec  float64
	FinalThroughput float64
	MeanThroughput  float64
	LatencyP50      time.Duration
	LatencyP99      time.Duration
	FinalWeights    []int
}

// Compare runs the scenario under each policy and normalizes execution times
// to the Oracle* row (1.0 when Oracle* is among the policies).
func Compare(sc Scenario, kinds []PolicyKind) ([]Row, error) {
	rows := make([]Row, 0, len(kinds))
	var oracleExec time.Duration
	for _, kind := range kinds {
		m, err := RunPolicy(sc, kind)
		if err != nil {
			return nil, err
		}
		row := Row{
			Policy:          kind.String(),
			ExecTime:        m.EndTime,
			FinalThroughput: m.FinalThroughput,
			MeanThroughput:  m.MeanThroughput,
			LatencyP50:      m.LatencyP50,
			LatencyP99:      m.LatencyP99,
			FinalWeights:    m.FinalWeights,
		}
		if kind == PolicyOracle {
			oracleExec = m.EndTime
		}
		rows = append(rows, row)
	}
	if oracleExec > 0 {
		for i := range rows {
			rows[i].NormalizedExec = float64(rows[i].ExecTime) / float64(oracleExec)
		}
	}
	return rows, nil
}

// PlaceAcrossHosts distributes n PEs over the hosts one thread-slot at a
// time, cycling hosts until each host's slots are exhausted, then filling
// the remaining PEs onto hosts with spare slots (and finally round-robin if
// every slot is taken). For the paper's fast(16)+slow(8) pair this yields
// 1+1, 2+2, 4+4, 8+8 and 16+8 for N = 2, 4, 8, 16 and 24, matching the
// placements of Section 6.5.
func PlaceAcrossHosts(n int, hosts []sim.HostSpec, load func(j int) sim.LoadSchedule) []sim.PESpec {
	pes := make([]sim.PESpec, n)
	counts := make([]int, len(hosts))
	placed := 0
	for placed < n {
		progress := false
		for h := range hosts {
			if placed >= n {
				break
			}
			if counts[h] < hosts[h].ThreadSlots() {
				pes[placed].Host = h
				counts[h]++
				placed++
				progress = true
			}
		}
		if !progress {
			// All slots taken: oversubscribe round-robin.
			for h := range hosts {
				if placed >= n {
					break
				}
				pes[placed].Host = h
				counts[h]++
				placed++
			}
		}
	}
	if load != nil {
		for j := range pes {
			pes[j].Load = load(j)
		}
	}
	return pes
}

// HostsForPEs returns enough slow hosts for one PE per thread slot — the
// paper's "one PE per core" placement on homogeneous machines.
func HostsForPEs(n int) []sim.HostSpec {
	per := sim.SlowHost("slow0").ThreadSlots()
	count := (n + per - 1) / per
	hosts := make([]sim.HostSpec, count)
	for i := range hosts {
		hosts[i] = sim.SlowHost(fmt.Sprintf("slow%d", i))
	}
	return hosts
}

// HalfLoaded gives the first n/2 PEs a load multiplier (static, or removed
// at switchAt when nonzero) and leaves the rest unloaded — the workload of
// Figures 9, 10 and 13.
func HalfLoaded(n int, multiplier float64, switchAt time.Duration) func(j int) sim.LoadSchedule {
	return func(j int) sim.LoadSchedule {
		if j >= n/2 {
			return sim.LoadSchedule{}
		}
		if switchAt > 0 {
			return sim.StepLoad(multiplier, 1, switchAt)
		}
		return sim.ConstantLoad(multiplier)
	}
}
