package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"streambalance/internal/stats"
)

// parseCSV decodes and sanity-checks a CSV body.
func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	if len(records) < 2 {
		t.Fatalf("csv has %d records, want header plus data", len(records))
	}
	width := len(records[0])
	for i, rec := range records {
		if len(rec) != width {
			t.Fatalf("record %d has %d fields, want %d", i, len(rec), width)
		}
	}
	return records
}

func TestSweepReportWriteCSV(t *testing.T) {
	report := SweepReport{Points: []SweepPoint{
		{PEs: 2, Rows: []Row{
			{Policy: "Oracle*", ExecTime: time.Second, NormalizedExec: 1, FinalThroughput: 10, MeanThroughput: 9},
			{Policy: "RR", ExecTime: 5 * time.Second, NormalizedExec: 5, FinalThroughput: 2, MeanThroughput: 2},
		}},
	}}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("got %d records, want 3", len(records))
	}
	if records[2][1] != "RR" || records[2][2] != "5" {
		t.Fatalf("RR row = %v", records[2])
	}
}

func TestInDepthReportWriteCSV(t *testing.T) {
	report := InDepthReport{
		Weights:  stats.NewSeriesSet("w"),
		Rates:    stats.NewSeriesSet("r"),
		Clusters: [][]int{{0, 0, 1}},
	}
	report.Weights.Get("conn0").Record(time.Second, 500)
	report.Rates.Get("conn0").Record(time.Second, 0.5)
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"weight,1,conn0,500", "rate,1,conn0,0.5", "cluster,0,conn2,1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("csv missing %q:\n%s", want, body)
		}
	}
}

func TestFig2ReportWriteCSV(t *testing.T) {
	report := Fig2Report{
		Cumulative: stats.NewSeries("c"),
		Rate:       stats.NewSeries("r"),
	}
	report.Cumulative.Record(time.Second, 1)
	report.Cumulative.Record(2*time.Second, 2)
	report.Rate.Record(time.Second, 1)
	report.Rate.Record(2*time.Second, 1)
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 {
		t.Fatalf("got %d records, want 3", len(records))
	}
}

func TestRerouteAndAblationWriteCSV(t *testing.T) {
	reroute := RerouteReport{Rows: []RerouteRow{
		{BaseCost: 1000, Policy: "RR", MeanThroughput: 20, ReroutedPercent: 0},
	}}
	var buf bytes.Buffer
	if err := reroute.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf)

	ablation := AblationReport{Rows: []AblationRow{
		{Variant: "decay=0.90", ExecTime: time.Minute, FinalThroughput: 100, MeanThroughput: 90},
	}}
	buf.Reset()
	if err := ablation.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if records[1][0] != "decay=0.90" {
		t.Fatalf("variant cell = %q", records[1][0])
	}
}

func TestFig5ReportWriteCSV(t *testing.T) {
	report := Fig5Report{Splits: []Fig5Split{
		{Share: 800, MeanRate: 0.98, CoV: 0.01, LeaderShare: 1},
		{Share: 500, MeanRate: 0.97, CoV: 0.02, LeaderShare: 1},
	}}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 || records[1][0] != "800" {
		t.Fatalf("unexpected records: %v", records)
	}
}
