package harness

import (
	"fmt"
	"strings"
	"time"
)

// renderRows renders a policy-comparison table.
func renderRows(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %14s %12s %14s %14s %12s %12s\n",
		"policy", "exec-time", "norm-exec", "final-tput/s", "mean-tput/s", "lat-p50", "lat-p99")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14s %12.2f %14.1f %14.1f %12s %12s\n",
			r.Policy, r.ExecTime.Truncate(time.Millisecond), r.NormalizedExec,
			r.FinalThroughput, r.MeanThroughput,
			r.LatencyP50.Truncate(time.Microsecond), r.LatencyP99.Truncate(time.Microsecond))
	}
	return b.String()
}

// SweepPoint is one fan-out size within a sweep figure.
type SweepPoint struct {
	PEs  int
	Rows []Row
}

// SweepReport is a whole sweep figure (Figures 9, 10, 11-bottom, 13).
type SweepReport struct {
	Title  string
	Points []SweepPoint
}

// String renders the sweep as one table per fan-out.
func (r SweepReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	for _, p := range r.Points {
		b.WriteString(renderRows(fmt.Sprintf("-- %d PEs --", p.PEs), p.Rows))
	}
	return b.String()
}

// Lookup returns the row for a policy label at a fan-out; ok is false when
// absent.
func (r SweepReport) Lookup(pes int, policy string) (Row, bool) {
	for _, p := range r.Points {
		if p.PEs != pes {
			continue
		}
		for _, row := range p.Rows {
			if row.Policy == policy {
				return row, true
			}
		}
	}
	return Row{}, false
}
