package harness

import (
	"strings"
	"testing"
	"time"
)

func TestFig2CumulativeResetsAndRate(t *testing.T) {
	report, err := Fig2Blocking(40 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if report.Cumulative.Len() == 0 || report.Rate.Len() == 0 {
		t.Fatal("empty series")
	}
	// The cumulative counter must rise and be reset at least once.
	sawReset := false
	prev := -1.0
	for _, p := range report.Cumulative.Points() {
		if p.Value < prev {
			sawReset = true
		}
		prev = p.Value
	}
	if !sawReset {
		t.Fatal("cumulative blocking never reset")
	}
	// The loaded connection's blocking rate is high and stable.
	if mean := report.Rate.MeanSince(5 * time.Second); mean < 0.5 {
		t.Fatalf("mean blocking rate %.3f, want high for an overloaded connection", mean)
	}
	if !strings.Contains(report.String(), "cumulative") {
		t.Fatal("report rendering missing cumulative column")
	}
}

func TestFig5MonotoneAndStable(t *testing.T) {
	report, err := Fig5FixedSplits(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Splits) != 4 {
		t.Fatalf("got %d splits, want 4", len(report.Splits))
	}
	// Blocking rate decreases monotonically from the 80/20 split to the
	// 50/50 split (Figure 5's monotonicity observation).
	for i := 1; i < len(report.Splits); i++ {
		if report.Splits[i].MeanRate > report.Splits[i-1].MeanRate+1e-9 {
			t.Fatalf("split %d mean rate %.4f > previous %.4f: not monotone",
				i, report.Splits[i].MeanRate, report.Splits[i-1].MeanRate)
		}
	}
	// The skewed splits are stable (flat): the draft leader is pinned.
	for _, s := range report.Splits[:3] {
		if s.CoV > 0.25 {
			t.Fatalf("split %d CoV %.3f, want flat signal", s.Share, s.CoV)
		}
	}
	// Blocking concentrates on one connection (drafting).
	for _, s := range report.Splits {
		if s.LeaderShare < 0.8 {
			t.Fatalf("split %d leader share %.2f, want >= 0.8", s.Share, s.LeaderShare)
		}
	}
	if !strings.Contains(report.String(), "80/20") {
		t.Fatal("report rendering missing split labels")
	}
}

func TestFig8TopAdaptsAndRecovers(t *testing.T) {
	duration := 160 * time.Second // load removed at 20s
	report, err := Fig8Top(duration)
	if err != nil {
		t.Fatal(err)
	}
	w0 := report.Weights.Get("conn0")
	// While loaded, connection 0 must be throttled hard.
	if v, ok := w0.At(18 * time.Second); !ok || v > 150 {
		t.Fatalf("conn0 weight at 18s = %v, want throttled below 150", v)
	}
	// Well after the load is removed it recovers toward an even share.
	final := report.Final.FinalWeights
	for j, w := range final {
		if w < 250 || w > 450 {
			t.Fatalf("final weights %v: conn %d not near even share", final, j)
		}
	}
}

func TestFig8BottomDetectsEqualCapacity(t *testing.T) {
	report, err := Fig8Bottom(200 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	final := report.Final.FinalWeights
	for j, w := range final {
		if w < 200 || w > 500 {
			t.Fatalf("final weights %v: conn %d far from even despite equal capacity", final, j)
		}
	}
	// Throughput near the 3-PE capacity (300/s at 10k multiplies).
	if report.Final.FinalThroughput < 250 {
		t.Fatalf("final throughput %.1f, want near 300", report.Final.FinalThroughput)
	}
}

func TestFig11TopFavorsFastHost(t *testing.T) {
	report, err := Fig11Top(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	final := report.Final.FinalWeights
	if final[0] <= final[1] {
		t.Fatalf("final weights %v: fast host should hold more", final)
	}
	// Capacities are 1.2:1, so expect roughly a 55/45 split, not a wild
	// skew.
	if final[0] > 750 {
		t.Fatalf("final weights %v: fast host share implausibly high", final)
	}
}

func TestFig12ClassesSeparate(t *testing.T) {
	report, err := Fig12(150 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if report.Clusters == nil {
		t.Fatal("no clustering recorded")
	}
	last := report.Clusters[len(report.Clusters)-1]
	// Count distinct clusters in the final tick.
	ids := make(map[int]bool)
	for _, id := range last {
		ids[id] = true
	}
	if len(ids) < 3 {
		t.Fatalf("final clustering has %d clusters, want >= 3 classes", len(ids))
	}
	// Clusters of meaningful size must not span load classes (channels
	// 0-19: 100x, 20-39: 5x, 40-63: unloaded). A few straggler channels
	// whose weight oscillates through zero carry decayed, near-flat
	// functions and can be mislabelled transiently — the paper's own heat
	// map shows channels still switching clusters late in the run — so
	// only clusters with three or more members are held to purity, and at
	// most 10% of channels may sit in a mixed cluster.
	classOf := func(j int) int {
		switch {
		case j < 20:
			return 0
		case j < 40:
			return 1
		default:
			return 2
		}
	}
	members := make(map[int][]int)
	for j, id := range last {
		members[id] = append(members[id], j)
	}
	mixedChannels := 0
	for id, chans := range members {
		counts := make(map[int]int)
		for _, j := range chans {
			counts[classOf(j)]++
		}
		if len(counts) == 1 {
			continue
		}
		majority := 0
		for _, c := range counts {
			if c > majority {
				majority = c
			}
		}
		mixed := len(chans) - majority
		mixedChannels += mixed
		if len(chans) >= 3 && mixed > len(chans)/2 {
			t.Fatalf("large cluster %d badly mixes classes: %v", id, chans)
		}
	}
	if mixedChannels > 6 {
		t.Fatalf("%d channels sit in mixed clusters, want <= 6 stragglers", mixedChannels)
	}
	// The 100x channels end with much lower weight than unloaded ones.
	final := report.Final.FinalWeights
	var loaded, unloaded float64
	for j := 0; j < 20; j++ {
		loaded += float64(final[j])
	}
	for j := 40; j < 64; j++ {
		unloaded += float64(final[j])
	}
	if loaded/20 >= unloaded/24 {
		t.Fatalf("mean weight loaded %.1f >= unloaded %.1f", loaded/20, unloaded/24)
	}
	if !strings.Contains(report.String(), "heat map") {
		t.Fatal("report rendering missing heat map")
	}
}

func TestFig9StaticShape(t *testing.T) {
	report, err := Fig9Static(SweepOptions{Sizes: []int{2, 4}, Tuples: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		rr, ok := report.Lookup(n, "RR")
		if !ok {
			t.Fatalf("no RR row at %d PEs", n)
		}
		lb, ok := report.Lookup(n, "LB-adaptive")
		if !ok {
			t.Fatalf("no LB row at %d PEs", n)
		}
		// Paper: LB is 1.5-4x better than RR.
		if rr.ExecTime < time.Duration(float64(lb.ExecTime)*1.4) {
			t.Fatalf("%d PEs: RR %v vs LB %v: expected RR clearly slower", n, rr.ExecTime, lb.ExecTime)
		}
		oracle, _ := report.Lookup(n, "Oracle*")
		if oracle.NormalizedExec != 1 {
			t.Fatalf("%d PEs: oracle normalized %v, want 1", n, oracle.NormalizedExec)
		}
	}
}

func TestFig10DynamicAdaptiveBeatsStatic(t *testing.T) {
	// Full per-run workload: the post-switch phase must be long enough for
	// the adaptive variant's re-exploration to pay off.
	report, err := Fig10Dynamic(SweepOptions{Sizes: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	static, ok := report.Lookup(4, "LB-static")
	if !ok {
		t.Fatal("no LB-static row")
	}
	adaptive, ok := report.Lookup(4, "LB-adaptive")
	if !ok {
		t.Fatal("no LB-adaptive row")
	}
	// Paper: LB-adaptive's final throughput is almost twice LB-static's,
	// because only the adaptive variant discovers the load removal.
	if adaptive.FinalThroughput < 1.3*static.FinalThroughput {
		t.Fatalf("adaptive final %.1f vs static %.1f: adaptation invisible",
			adaptive.FinalThroughput, static.FinalThroughput)
	}
}

func TestFig13ClusteringBeatsRR(t *testing.T) {
	report, err := Fig13(SweepOptions{Sizes: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := report.Lookup(32, "RR")
	if !ok {
		t.Fatal("no RR row")
	}
	adaptive, ok := report.Lookup(32, "LB-adaptive")
	if !ok {
		t.Fatal("no LB-adaptive row")
	}
	// Paper: close to 9x better than RR at 32/64 PEs.
	if rr.ExecTime < 3*adaptive.ExecTime {
		t.Fatalf("RR %v vs LB-adaptive %v: expected a decisive LB win", rr.ExecTime, adaptive.ExecTime)
	}
}

func TestFig11BottomEvenLBWinsAt24(t *testing.T) {
	report, err := Fig11Bottom(SweepOptions{Sizes: []int{24}})
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) Row {
		row, ok := report.Lookup(24, label)
		if !ok {
			t.Fatalf("no %s row", label)
		}
		return row
	}
	// The paper's headline (Section 6.5): with 24 PEs split 16 fast + 8
	// slow, dynamic load balancing makes the slow host additive and the
	// configuration achieves the fastest overall throughput. Final
	// throughput is the steady-state measure, past the learning transient.
	evenLB := get("Even-LB")
	for _, other := range []string{"All-Fast", "All-Slow", "Even-RR"} {
		if evenLB.FinalThroughput <= get(other).FinalThroughput {
			t.Fatalf("Even-LB %.1f <= %s %.1f at 24 PEs: paper's headline result missing",
				evenLB.FinalThroughput, other, get(other).FinalThroughput)
		}
	}
}

func TestSec44RerouteOrdering(t *testing.T) {
	report, err := Sec44Reroute(150 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]RerouteRow)
	for _, row := range report.Rows {
		byKey[row.Policy+"@"+itoa(row.BaseCost)] = row
	}
	rr := byKey["RR@1000"]
	re := byKey["RR+reroute@1000"]
	lb := byKey["LB-adaptive@1000"]
	if re.MeanThroughput <= rr.MeanThroughput {
		t.Fatalf("reroute %.1f <= RR %.1f", re.MeanThroughput, rr.MeanThroughput)
	}
	if lb.MeanThroughput < 2*re.MeanThroughput {
		t.Fatalf("LB %.1f vs reroute %.1f: balancer should far exceed re-routing",
			lb.MeanThroughput, re.MeanThroughput)
	}
	if re.ReroutedPercent <= 0 || re.ReroutedPercent >= 100 {
		t.Fatalf("rerouted percent %.2f out of range", re.ReroutedPercent)
	}
	if rr.ReroutedPercent != 0 {
		t.Fatalf("plain RR rerouted %.2f%%, want 0", rr.ReroutedPercent)
	}
}

func itoa(n int) string {
	if n == 1000 {
		return "1000"
	}
	if n == 10000 {
		return "10000"
	}
	return "?"
}

func TestRenderHeatmap(t *testing.T) {
	rows := make([][]int, 20)
	for i := range rows {
		rows[i] = []int{0, 0, 1, 2}
	}
	out := RenderHeatmap(rows)
	if !strings.Contains(out, "aabc") {
		t.Fatalf("heat map rendering = %q, want cluster glyphs", out)
	}
}

func TestSweepReportLookup(t *testing.T) {
	report := SweepReport{Points: []SweepPoint{
		{PEs: 2, Rows: []Row{{Policy: "RR", ExecTime: time.Second}}},
	}}
	if _, ok := report.Lookup(2, "RR"); !ok {
		t.Fatal("existing row not found")
	}
	if _, ok := report.Lookup(2, "LB"); ok {
		t.Fatal("missing policy found")
	}
	if _, ok := report.Lookup(4, "RR"); ok {
		t.Fatal("missing size found")
	}
	if !strings.Contains(report.String(), "RR") {
		t.Fatal("rendering missing policy")
	}
}
