// Package testutil holds small helpers shared by this repository's test
// suites. It must not be imported from non-test code.
package testutil

import (
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the helpers need; taking the interface
// keeps testutil importable without the testing package leaking into
// builds.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// ExpectNoModuleGoroutines polls until every goroutine still running this
// module's code has exited, or the wait elapses — and then fails the test
// listing the survivors' stacks. Call it after tearing down the component
// under test: it is the teardown leak check proving Close really releases
// every reader, watchdog, monitor and redial goroutine.
//
// Goroutines whose stacks include a _test.go frame are ignored (they belong
// to the test itself, including the caller), as are testutil's own frames —
// so the check is only meaningful in tests that do not leave their own
// module-code goroutines running on purpose.
func ExpectNoModuleGoroutines(t TB, wait time.Duration) {
	t.Helper()
	deadline := time.Now().Add(wait)
	var leftover []string
	for {
		leftover = moduleGoroutines()
		if len(leftover) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("testutil: %d module goroutine(s) survived teardown:\n\n%s",
		len(leftover), strings.Join(leftover, "\n\n"))
}

// moduleGoroutines returns the stacks of live goroutines executing (or
// created by) this module's non-test code.
func moduleGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, s := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(s, "streambalance/") {
			continue
		}
		if strings.Contains(s, "_test.go") || strings.Contains(s, "/testutil.") {
			continue
		}
		out = append(out, s)
	}
	return out
}
