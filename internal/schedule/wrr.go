// Package schedule implements the weighted round-robin schedule the splitter
// uses to realize the allocation weights chosen by the load-balancing
// optimization. The paper's splitter distributes tuples by weighted
// round-robin with weights in units of 0.1% (Section 5.1); this package uses
// the smooth weighted round-robin algorithm so that tuples for a connection
// are spread evenly through each frame rather than sent in bursts, which
// keeps the blocking signal per connection stable.
package schedule

import (
	"errors"
	"fmt"
)

// ErrNoConnections is returned when a schedule is constructed with no slots.
var ErrNoConnections = errors.New("schedule: at least one connection required")

// WRR is a smooth weighted round-robin scheduler over N connections. Each
// call to Next returns the index of the connection that should receive the
// next tuple. Over any window of total-weight consecutive picks, connection j
// is returned exactly weight_j times, and picks are interleaved as evenly as
// possible (the classic nginx smooth WRR property).
//
// WRR is not safe for concurrent use; the splitter owns it and applies
// weight updates between picks.
type WRR struct {
	weights []int
	current []int
	total   int
	// fallback cycles plainly over all connections when every weight is
	// zero, so the splitter never deadlocks on a degenerate weight vector.
	fallback int
	picks    int64
}

// NewWRR returns a scheduler over n connections with equal initial weights.
func NewWRR(n int) (*WRR, error) {
	if n <= 0 {
		return nil, ErrNoConnections
	}
	w := &WRR{
		weights: make([]int, n),
		current: make([]int, n),
	}
	for i := range w.weights {
		w.weights[i] = 1
	}
	w.total = n
	return w, nil
}

// N returns the number of connections.
func (w *WRR) N() int {
	return len(w.weights)
}

// SetWeights replaces the weight vector. Negative weights are an error, as is
// a vector of the wrong length. A connection with weight zero is never
// selected unless all weights are zero. The smooth-WRR accumulators are
// preserved for connections whose weight stays positive so that a weight
// update does not cause a burst.
func (w *WRR) SetWeights(weights []int) error {
	if len(weights) != len(w.weights) {
		return fmt.Errorf("schedule: got %d weights, want %d", len(weights), len(w.weights))
	}
	total := 0
	for i, wt := range weights {
		if wt < 0 {
			return fmt.Errorf("schedule: negative weight %d for connection %d", wt, i)
		}
		total += wt
	}
	for i, wt := range weights {
		w.weights[i] = wt
		if wt == 0 {
			w.current[i] = 0
		}
	}
	w.total = total
	return nil
}

// Weights returns a copy of the current weight vector.
func (w *WRR) Weights() []int {
	out := make([]int, len(w.weights))
	copy(out, w.weights)
	return out
}

// Picks returns how many scheduling decisions Next has made over the
// lifetime of this schedule (across weight updates and membership edits).
func (w *WRR) Picks() int64 {
	return w.picks
}

// Next returns the connection index that should receive the next tuple.
func (w *WRR) Next() int {
	w.picks++
	if w.total == 0 {
		idx := w.fallback
		w.fallback = (w.fallback + 1) % len(w.weights)
		return idx
	}
	best := -1
	for i := range w.weights {
		if w.weights[i] == 0 {
			continue
		}
		w.current[i] += w.weights[i]
		if best < 0 || w.current[i] > w.current[best] {
			best = i
		}
	}
	w.current[best] -= w.total
	return best
}

// Add appends a new connection slot with the given weight and returns its
// index. The new slot's accumulator starts at zero, so it is woven into the
// ongoing frame without causing a burst. Used when a restarted worker
// rejoins a region.
func (w *WRR) Add(weight int) (int, error) {
	if weight < 0 {
		return 0, fmt.Errorf("schedule: negative weight %d for new connection", weight)
	}
	w.weights = append(w.weights, weight)
	w.current = append(w.current, 0)
	w.total += weight
	return len(w.weights) - 1, nil
}

// Remove drops connection slot j (a failed worker); indices above j shift
// down by one, matching the caller's renumbering of its connection slice.
// The survivors keep their weights and accumulators, so traffic continues
// in proportion without a rebalance.
func (w *WRR) Remove(j int) error {
	if j < 0 || j >= len(w.weights) {
		return fmt.Errorf("schedule: connection %d out of range [0,%d)", j, len(w.weights))
	}
	if len(w.weights) == 1 {
		return errors.New("schedule: cannot remove the last connection")
	}
	w.total -= w.weights[j]
	w.weights = append(w.weights[:j], w.weights[j+1:]...)
	w.current = append(w.current[:j], w.current[j+1:]...)
	if w.fallback >= len(w.weights) {
		w.fallback = 0
	}
	return nil
}

// Reset zeroes the smooth-WRR accumulators so the next frame starts fresh.
func (w *WRR) Reset() {
	for i := range w.current {
		w.current[i] = 0
	}
	w.fallback = 0
}
