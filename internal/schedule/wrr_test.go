package schedule

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWRRValidation(t *testing.T) {
	if _, err := NewWRR(0); !errors.Is(err, ErrNoConnections) {
		t.Fatalf("NewWRR(0) err = %v, want ErrNoConnections", err)
	}
	if _, err := NewWRR(-3); err == nil {
		t.Fatal("NewWRR(-3) accepted")
	}
	w, err := NewWRR(4)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 4 {
		t.Fatalf("N = %d, want 4", w.N())
	}
}

func TestSetWeightsValidation(t *testing.T) {
	w, err := NewWRR(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{1, 2}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := w.SetWeights([]int{1, -1, 2}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := w.SetWeights([]int{1, 2, 3}); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
	got := w.Weights()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Weights = %v, want [1 2 3]", got)
	}
}

func TestWRRExactQuotaPerFrame(t *testing.T) {
	// Over one frame of total-weight picks, each connection receives
	// exactly its weight.
	tests := [][]int{
		{1, 1, 1},
		{8, 2},
		{5, 0, 5},
		{997, 2, 1},
		{0, 0, 7},
	}
	for _, weights := range tests {
		w, err := NewWRR(len(weights))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.SetWeights(weights); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, x := range weights {
			total += x
		}
		counts := make([]int, len(weights))
		for i := 0; i < total; i++ {
			counts[w.Next()]++
		}
		for j := range weights {
			if counts[j] != weights[j] {
				t.Fatalf("weights %v: counts %v", weights, counts)
			}
		}
	}
}

func TestWRRQuotaProperty(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN%8) + 1
		rng := rand.New(rand.NewSource(seed))
		weights := make([]int, n)
		total := 0
		for j := range weights {
			weights[j] = rng.Intn(20)
			total += weights[j]
		}
		if total == 0 {
			weights[0] = 1
			total = 1
		}
		w, err := NewWRR(n)
		if err != nil {
			return false
		}
		if err := w.SetWeights(weights); err != nil {
			return false
		}
		// Two frames: quotas must hold in each.
		for frame := 0; frame < 2; frame++ {
			counts := make([]int, n)
			for i := 0; i < total; i++ {
				counts[w.Next()]++
			}
			for j := range weights {
				if counts[j] != weights[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWRRSmoothness(t *testing.T) {
	// With weights 5:5, the schedule must alternate rather than burst.
	w, err := NewWRR(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{5, 5}); err != nil {
		t.Fatal(err)
	}
	prev := w.Next()
	for i := 0; i < 9; i++ {
		next := w.Next()
		if next == prev {
			t.Fatalf("pick %d repeated connection %d with even weights", i, next)
		}
		prev = next
	}
}

func TestWRRZeroWeightNeverPicked(t *testing.T) {
	w, err := NewWRR(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{4, 0, 4}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if w.Next() == 1 {
			t.Fatal("zero-weight connection selected")
		}
	}
}

func TestWRRAllZeroFallsBackToRoundRobin(t *testing.T) {
	w, err := NewWRR(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if got := w.Next(); got != i%3 {
			t.Fatalf("pick %d = %d, want plain round-robin %d", i, got, i%3)
		}
	}
}

func TestWRRReset(t *testing.T) {
	w, err := NewWRR(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{3, 1}); err != nil {
		t.Fatal(err)
	}
	first := w.Next()
	w.Reset()
	if got := w.Next(); got != first {
		t.Fatalf("after Reset first pick = %d, want %d", got, first)
	}
}

func TestWRRWeightsCopy(t *testing.T) {
	w, err := NewWRR(2)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Weights()
	got[0] = 99
	if w.Weights()[0] == 99 {
		t.Fatal("Weights returned internal slice")
	}
}

func TestWRRAdd(t *testing.T) {
	w, err := NewWRR(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{2, 2}); err != nil {
		t.Fatal(err)
	}
	idx, err := w.Add(4)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 || w.N() != 3 {
		t.Fatalf("Add returned %d (n=%d), want 2 (n=3)", idx, w.N())
	}
	// Over one full frame (total weight 8) the new slot gets its share.
	counts := make([]int, 3)
	for i := 0; i < 8; i++ {
		counts[w.Next()]++
	}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 4 {
		t.Fatalf("frame counts = %v, want [2 2 4]", counts)
	}
	if _, err := w.Add(-1); err == nil {
		t.Fatal("Add accepted a negative weight")
	}
}

func TestWRRAddZeroWeightNeverPicked(t *testing.T) {
	w, err := NewWRR(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Add(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := w.Next(); got == 2 {
			t.Fatal("zero-weight slot was picked")
		}
	}
}

func TestWRRRemove(t *testing.T) {
	w, err := NewWRR(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Remove(1); err != nil {
		t.Fatal(err)
	}
	if got := w.Weights(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("weights after Remove = %v, want [1 3]", got)
	}
	// Survivors keep serving in proportion: frame of total weight 4.
	counts := make([]int, 2)
	for i := 0; i < 4; i++ {
		counts[w.Next()]++
	}
	if counts[0] != 1 || counts[1] != 3 {
		t.Fatalf("frame counts = %v, want [1 3]", counts)
	}
	if err := w.Remove(5); err == nil {
		t.Fatal("Remove accepted an out-of-range index")
	}
	if err := w.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Remove(0); err == nil {
		t.Fatal("Remove dropped the last connection")
	}
}

func TestWRRRemoveResetsFallback(t *testing.T) {
	w, err := NewWRR(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// Advance the fallback cursor to the last slot, then remove a slot so
	// the cursor would point past the end.
	w.Next()
	w.Next()
	if err := w.Remove(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := w.Next(); got < 0 || got >= w.N() {
			t.Fatalf("fallback pick %d out of range", got)
		}
	}
}
