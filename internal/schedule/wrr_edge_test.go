package schedule

import (
	"testing"
)

// Edge cases around weight updates landing mid-frame: the splitter drains
// the WRR in batches, and weight vectors change between (and effectively
// inside) batch drains when the controller publishes a new allocation.

// TestWRRZeroWeightMidDrain drops a connection's weight to zero partway
// through a frame and verifies it is never picked again until its weight
// returns, while the survivors keep the smooth interleave.
func TestWRRZeroWeightMidDrain(t *testing.T) {
	w, err := NewWRR(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{4, 2, 2}); err != nil {
		t.Fatal(err)
	}
	// Drain half a frame, then zero connection 0 mid-drain.
	for i := 0; i < 4; i++ {
		w.Next()
	}
	if err := w.SetWeights([]int{0, 2, 2}); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 0; i < 40; i++ {
		counts[w.Next()]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight connection picked %d times mid-drain", counts[0])
	}
	if counts[1] != 20 || counts[2] != 20 {
		t.Fatalf("survivors drew %v, want even 20/20 split", counts[1:])
	}
	// Restoring the weight resumes service without a compensating burst:
	// over the next full frame the restored connection gets exactly its
	// share.
	if err := w.SetWeights([]int{2, 1, 1}); err != nil {
		t.Fatal(err)
	}
	counts = make([]int, 3)
	for i := 0; i < 40; i++ {
		counts[w.Next()]++
	}
	if counts[0] != 20 {
		t.Fatalf("restored connection drew %d of 40, want exactly its 50%% share", counts[0])
	}
}

// TestWRRSingleWorkerDegeneracy pins the N=1 behavior: every pick lands on
// the only slot for any weight (including zero, via the fallback cycle), and
// the last slot cannot be removed.
func TestWRRSingleWorkerDegeneracy(t *testing.T) {
	w, err := NewWRR(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := w.Next(); got != 0 {
			t.Fatalf("Next() = %d with one connection, want 0", got)
		}
	}
	if err := w.SetWeights([]int{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := w.Next(); got != 0 {
			t.Fatalf("Next() = %d with one zero-weight connection, want 0", got)
		}
	}
	if err := w.Remove(0); err == nil {
		t.Fatal("removing the last connection accepted")
	}
	if w.Picks() != 20 {
		t.Fatalf("Picks() = %d, want 20", w.Picks())
	}
}

// TestWRRWeightSwapDuringBatchDrain swaps the entire weight vector between
// two batch drains and verifies (a) no index outside the vector is ever
// produced, (b) each drained batch honors the vector in force when it was
// drained, and (c) accumulators carried across the swap do not let any
// connection overdraw a full frame.
func TestWRRWeightSwapDuringBatchDrain(t *testing.T) {
	w, err := NewWRR(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetWeights([]int{7, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	drain := func(n int) []int {
		counts := make([]int, 4)
		for i := 0; i < n; i++ {
			j := w.Next()
			if j < 0 || j >= 4 {
				t.Fatalf("Next() = %d, out of range", j)
			}
			counts[j]++
		}
		return counts
	}
	before := drain(10) // one full frame at 7/1/1/1
	if before[0] != 7 {
		t.Fatalf("connection 0 drew %d of 10 at weight 7, want 7", before[0])
	}
	// Swap to the mirrored vector mid-stream (the controller publishing a
	// rebalance between batch drains).
	if err := w.SetWeights([]int{1, 1, 1, 7}); err != nil {
		t.Fatal(err)
	}
	after := drain(10)
	if after[3] != 7 {
		t.Fatalf("connection 3 drew %d of 10 at weight 7, want 7", after[3])
	}
	if after[0] > 2 {
		t.Fatalf("demoted connection 0 drew %d of 10 at weight 1, want <= 2", after[0])
	}
	// Repeated swaps stay conservative: over any pair of frames each
	// connection draws at most weight+1 per frame (smoothness bound).
	for swap := 0; swap < 20; swap++ {
		weights := []int{1, 1, 1, 7}
		if swap%2 == 0 {
			weights = []int{7, 1, 1, 1}
		}
		if err := w.SetWeights(weights); err != nil {
			t.Fatal(err)
		}
		counts := drain(10)
		for j, c := range counts {
			if c > weights[j]+1 {
				t.Fatalf("swap %d: connection %d drew %d, want <= weight+1 = %d", swap, j, c, weights[j]+1)
			}
		}
	}
}
