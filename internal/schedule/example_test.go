package schedule_test

import (
	"fmt"

	"streambalance/internal/schedule"
)

// Example shows the smooth interleaving: with weights 3:1, connection 0
// receives three of every four tuples, spread through the frame rather than
// sent in a burst.
func Example() {
	wrr, err := schedule.NewWRR(2)
	if err != nil {
		panic(err)
	}
	if err := wrr.SetWeights([]int{3, 1}); err != nil {
		panic(err)
	}
	var picks []int
	for i := 0; i < 8; i++ {
		picks = append(picks, wrr.Next())
	}
	fmt.Println(picks)
	// Output:
	// [0 0 1 0 0 0 1 0]
}
