package schedule

import (
	"errors"
	"fmt"
)

// Keyed routing policies. Where the WRR schedule realizes the balancer's
// weight vector for stateless tuples, a KeyRouter pins each key to a
// connection chosen from the key's candidate set, trading a little routing
// freedom for per-key locality:
//
//   - HashRouter is classic hash grouping — one candidate per key, the
//     baseline that collapses under Zipf skew because the hottest key's
//     whole mass lands on one worker.
//   - PKGRouter is Partial Key Grouping (Nasir et al., "Partial Key
//     Grouping: Load-Balanced Partitioning of Distributed Streams"): every
//     key hashes to two candidate connections and each tuple goes to the
//     less loaded of the two, bounding imbalance while splitting each key
//     across at most two workers.
//   - DChoicesRouter generalizes PKG per "When Two Choices Are not Enough"
//     (the d-choices strategy): a space-saving sketch tracks heavy hitters,
//     and keys hot enough to overwhelm two workers spread over d candidates
//     while the long tail keeps PKG's two.
//
// PKG and d-choices measure "less loaded" as assigned-tuple counts scaled by
// an optional per-connection penalty fed from the paper's cumulative-blocking
// signal (SetPenalties), so the same elect-to-block measurements that drive
// the minimax balancer also steer keyed routing around genuinely slow
// workers.
//
// Routers are not safe for concurrent use; the splitter owns them and applies
// penalty updates and membership edits between picks, exactly as it does for
// the WRR schedule.

// KeyRouter picks the connection for a keyed tuple. Keys are nonzero: the
// splitter routes unkeyed tuples (Key == 0) through the WRR schedule, never
// through a KeyRouter.
type KeyRouter interface {
	// Route returns the connection index for key and records the
	// assignment in the router's load model.
	Route(key uint64) int
	// N returns the number of connection slots.
	N() int
	// Add appends a connection slot (a readmitted worker) and returns its
	// index.
	Add() int
	// Remove drops connection slot j; indices above j shift down by one,
	// matching the caller's renumbering of its connection slice (the same
	// contract as WRR.Remove).
	Remove(j int) error
}

// LoadAware routers accept an external per-connection load signal. The
// splitter's controller pushes each connection's blocking rate
// (seconds-blocked-per-second, from the same cumulative counters the minimax
// balancer samples) once per collection interval; a connection blocking the
// whole interval weighs double its raw assignment count.
type LoadAware interface {
	SetPenalties(p []float64) error
}

// mix64 is the SplitMix64 finalizer: a cheap invertible mixer whose output
// bits are uniformly sensitive to every input bit, so sequential keys spread
// uniformly over connections.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// candidate returns key's i-th candidate connection among n, by double
// hashing: two independent mixes give the base and the (odd) stride, so a
// key's candidate sequence visits distinct connections in a key-specific
// order.
func candidate(key uint64, i, n int) int {
	h1 := mix64(key)
	h2 := mix64(key^0x9e3779b97f4a7c15) | 1
	return int((h1 + uint64(i)*h2) % uint64(n))
}

// HashRouter is the hash-grouping baseline: one candidate per key.
type HashRouter struct {
	n int
}

// NewHashRouter returns a hash-grouping router over n connections.
func NewHashRouter(n int) (*HashRouter, error) {
	if n <= 0 {
		return nil, ErrNoConnections
	}
	return &HashRouter{n: n}, nil
}

// Route returns key's single hashed connection.
func (r *HashRouter) Route(key uint64) int { return candidate(key, 0, r.n) }

// N returns the number of connection slots.
func (r *HashRouter) N() int { return r.n }

// Add appends a connection slot.
func (r *HashRouter) Add() int {
	r.n++
	return r.n - 1
}

// Remove drops one connection slot (hash routing has no per-slot state, so
// only the modulus changes).
func (r *HashRouter) Remove(j int) error {
	if j < 0 || j >= r.n {
		return fmt.Errorf("schedule: connection %d out of range [0,%d)", j, r.n)
	}
	if r.n == 1 {
		return errors.New("schedule: cannot remove the last connection")
	}
	r.n--
	return nil
}

// loadModel is the shared least-loaded picker for PKG and d-choices: per
// connection, the count of tuples assigned so far, scaled by the externally
// fed blocking penalty.
type loadModel struct {
	counts    []float64
	penalties []float64
}

func newLoadModel(n int) loadModel {
	return loadModel{counts: make([]float64, n), penalties: make([]float64, n)}
}

// pick assigns key to the least loaded of its first c candidates and returns
// the connection index.
func (m *loadModel) pick(key uint64, c int) int {
	n := len(m.counts)
	best := candidate(key, 0, n)
	bestLoad := m.counts[best] * (1 + m.penalties[best])
	for i := 1; i < c; i++ {
		j := candidate(key, i, n)
		if load := m.counts[j] * (1 + m.penalties[j]); load < bestLoad {
			best, bestLoad = j, load
		}
	}
	m.counts[best]++
	return best
}

// setPenalties replaces the penalty vector. Negative penalties are an error.
func (m *loadModel) setPenalties(p []float64) error {
	if len(p) != len(m.penalties) {
		return fmt.Errorf("schedule: got %d penalties, want %d", len(p), len(m.penalties))
	}
	for i, v := range p {
		if v < 0 {
			return fmt.Errorf("schedule: negative penalty %v for connection %d", v, i)
		}
	}
	copy(m.penalties, p)
	return nil
}

// add appends a slot seeded with the mean assignment count, so a rejoining
// worker receives a fair share of new traffic instead of a catch-up flood.
func (m *loadModel) add() int {
	mean := 0.0
	if len(m.counts) > 0 {
		for _, c := range m.counts {
			mean += c
		}
		mean /= float64(len(m.counts))
	}
	m.counts = append(m.counts, mean)
	m.penalties = append(m.penalties, 0)
	return len(m.counts) - 1
}

func (m *loadModel) remove(j int) error {
	if j < 0 || j >= len(m.counts) {
		return fmt.Errorf("schedule: connection %d out of range [0,%d)", j, len(m.counts))
	}
	if len(m.counts) == 1 {
		return errors.New("schedule: cannot remove the last connection")
	}
	m.counts = append(m.counts[:j], m.counts[j+1:]...)
	m.penalties = append(m.penalties[:j], m.penalties[j+1:]...)
	return nil
}

// PKGRouter implements Partial Key Grouping: two candidates per key, tuple
// to the less loaded.
type PKGRouter struct {
	model loadModel
}

// NewPKGRouter returns a PKG router over n connections.
func NewPKGRouter(n int) (*PKGRouter, error) {
	if n <= 0 {
		return nil, ErrNoConnections
	}
	return &PKGRouter{model: newLoadModel(n)}, nil
}

// Route assigns key to the less loaded of its two candidate connections.
func (r *PKGRouter) Route(key uint64) int { return r.model.pick(key, 2) }

// N returns the number of connection slots.
func (r *PKGRouter) N() int { return len(r.model.counts) }

// SetPenalties replaces the per-connection blocking penalties.
func (r *PKGRouter) SetPenalties(p []float64) error { return r.model.setPenalties(p) }

// Add appends a connection slot.
func (r *PKGRouter) Add() int { return r.model.add() }

// Remove drops connection slot j.
func (r *PKGRouter) Remove(j int) error { return r.model.remove(j) }

// Default d-choices parameters: DefaultDChoices candidates for a heavy
// hitter, a DefaultTrackerCap-entry space-saving sketch, and a hot threshold
// of 1/(2n) of the observed stream — a key claiming more than half of one
// connection's fair share is too big for two workers.
const (
	DefaultDChoices   = 4
	DefaultTrackerCap = 256
)

// DChoicesRouter is PKG with d candidates for heavy-hitter keys: a
// space-saving sketch estimates key frequencies, and keys whose estimated
// share exceeds 1/(2n) of the stream spread over d candidates instead of 2.
type DChoicesRouter struct {
	model   loadModel
	d       int
	tracker spaceSaving
}

// NewDChoicesRouter returns a d-choices router over n connections. d <= 0
// selects DefaultDChoices; trackerCap <= 0 selects DefaultTrackerCap. d is
// clamped to n.
func NewDChoicesRouter(n, d, trackerCap int) (*DChoicesRouter, error) {
	if n <= 0 {
		return nil, ErrNoConnections
	}
	if d <= 0 {
		d = DefaultDChoices
	}
	if d > n {
		d = n
	}
	if d < 2 {
		d = 2
	}
	if trackerCap <= 0 {
		trackerCap = DefaultTrackerCap
	}
	return &DChoicesRouter{
		model:   newLoadModel(n),
		d:       d,
		tracker: newSpaceSaving(trackerCap),
	}, nil
}

// Route updates the frequency sketch and assigns key to the least loaded of
// its candidates — d of them when the key is hot, two otherwise.
func (r *DChoicesRouter) Route(key uint64) int {
	est := r.tracker.observe(key)
	c := 2
	// Hot when the key's estimated count exceeds 1/(2n) of everything
	// observed: est/total > 1/(2n), compared multiplication-only.
	if est*uint64(2*len(r.model.counts)) > r.tracker.total {
		c = r.d
	}
	return r.model.pick(key, c)
}

// N returns the number of connection slots.
func (r *DChoicesRouter) N() int { return len(r.model.counts) }

// SetPenalties replaces the per-connection blocking penalties.
func (r *DChoicesRouter) SetPenalties(p []float64) error { return r.model.setPenalties(p) }

// Add appends a connection slot, re-clamping d if it exceeded the old width.
func (r *DChoicesRouter) Add() int { return r.model.add() }

// Remove drops connection slot j.
func (r *DChoicesRouter) Remove(j int) error {
	if err := r.model.remove(j); err != nil {
		return err
	}
	if r.d > len(r.model.counts) {
		r.d = len(r.model.counts)
	}
	return nil
}

// spaceSaving is the classic Metwally et al. heavy-hitter sketch: at most cap
// tracked keys; a miss when full evicts the minimum-count key, and the
// newcomer inherits min+1 (an overestimate, which is the safe direction for
// hot-key detection). A min-heap keeps both hit and miss O(log cap).
type spaceSaving struct {
	cap     int
	entries map[uint64]*ssEntry
	heap    []*ssEntry
	total   uint64
}

type ssEntry struct {
	key   uint64
	count uint64
	idx   int
}

func newSpaceSaving(capacity int) spaceSaving {
	return spaceSaving{
		cap:     capacity,
		entries: make(map[uint64]*ssEntry, capacity),
	}
}

// observe counts one occurrence of key and returns its new estimate.
func (s *spaceSaving) observe(key uint64) uint64 {
	s.total++
	if e, ok := s.entries[key]; ok {
		e.count++
		s.siftDown(e.idx)
		return e.count
	}
	if len(s.heap) < s.cap {
		e := &ssEntry{key: key, count: 1, idx: len(s.heap)}
		s.heap = append(s.heap, e)
		s.entries[key] = e
		s.siftUp(e.idx)
		return 1
	}
	// Evict the current minimum: the newcomer takes over its slot with
	// count min+1.
	e := s.heap[0]
	delete(s.entries, e.key)
	e.key = key
	e.count++
	s.entries[key] = e
	s.siftDown(0)
	return e.count
}

func (s *spaceSaving) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].count <= s.heap[i].count {
			return
		}
		s.swap(parent, i)
		i = parent
	}
}

func (s *spaceSaving) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.heap) && s.heap[l].count < s.heap[min].count {
			min = l
		}
		if r < len(s.heap) && s.heap[r].count < s.heap[min].count {
			min = r
		}
		if min == i {
			return
		}
		s.swap(min, i)
		i = min
	}
}

func (s *spaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].idx = i
	s.heap[j].idx = j
}
