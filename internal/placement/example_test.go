package placement_test

import (
	"fmt"

	"streambalance/internal/placement"
)

// Example places two regions' workers on a heterogeneous pair of hosts and
// prints the resulting worst-case utilization.
func Example() {
	p := placement.Problem{
		Hosts: []placement.Host{
			{Name: "fast", Slots: 16, Speed: 60},
			{Name: "slow", Slots: 8, Speed: 50},
		},
		Regions: []placement.Region{
			{Name: "ingest", Workers: 8, Demand: 600},
			{Name: "score", Workers: 8, Demand: 300},
		},
	}
	a, err := placement.Place(p)
	if err != nil {
		panic(err)
	}
	obj, err := p.Objective(a)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max host utilization: %.0f%%\n", obj*100)
	fmt.Println("every worker placed:", len(a.Workers[0]) == 8 && len(a.Workers[1]) == 8)
	// Output:
	// max host utilization: 66%
	// every worker placed: true
}
