// Package placement addresses the paper's stated future work (Section 8):
// cluster-wide load balancing by assigning the parallel worker PEs of many
// regions to many hosts. The local balancer (internal/core) can only divide
// traffic among the workers a region already has; where those workers *live*
// decides how much leverage it gets. Placement chooses host assignments that
// minimize the maximum host utilization — the same minimax objective the
// local optimizer uses, one level up — and rebalances incrementally when
// region demands change, echoing the local model's incremental weight
// constraints.
package placement

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Host is one compute node of the cluster.
type Host struct {
	// Name labels the host in reports.
	Name string
	// Slots is the number of workers the host runs at full speed (its
	// hardware threads).
	Slots int
	// Speed is the per-slot processing rate in arbitrary work units per
	// second (e.g. tuples/s at some reference cost).
	Speed float64
}

// Capacity returns the host's total work rate.
func (h Host) Capacity() float64 {
	return float64(h.Slots) * h.Speed
}

// Region is one data-parallel region demanding placement.
type Region struct {
	// Name labels the region.
	Name string
	// Workers is the region's replica count.
	Workers int
	// Demand is the region's total offered work rate in the same units as
	// host Speed. The per-worker demand is Demand/Workers under the local
	// balancer's even steady state; the local balancer reshapes it further
	// at runtime.
	Demand float64
}

// perWorkerDemand returns the demand one worker of the region carries.
func (r Region) perWorkerDemand() float64 {
	if r.Workers <= 0 {
		return 0
	}
	return r.Demand / float64(r.Workers)
}

// Assignment maps every worker to a host: Workers[region][worker] = host
// index.
type Assignment struct {
	Workers [][]int
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	out := Assignment{Workers: make([][]int, len(a.Workers))}
	for i, ws := range a.Workers {
		out.Workers[i] = append([]int(nil), ws...)
	}
	return out
}

// Problem is a placement instance.
type Problem struct {
	Hosts   []Host
	Regions []Region
}

// validate rejects unusable instances.
func (p Problem) validate() error {
	if len(p.Hosts) == 0 {
		return errors.New("placement: no hosts")
	}
	if len(p.Regions) == 0 {
		return errors.New("placement: no regions")
	}
	for i, h := range p.Hosts {
		if h.Slots <= 0 {
			return fmt.Errorf("placement: host %d (%s) has %d slots", i, h.Name, h.Slots)
		}
		if h.Speed <= 0 {
			return fmt.Errorf("placement: host %d (%s) has speed %v", i, h.Name, h.Speed)
		}
	}
	for i, r := range p.Regions {
		if r.Workers <= 0 {
			return fmt.Errorf("placement: region %d (%s) has %d workers", i, r.Name, r.Workers)
		}
		if r.Demand < 0 {
			return fmt.Errorf("placement: region %d (%s) has negative demand", i, r.Name)
		}
	}
	return nil
}

// Utilizations returns each host's load fraction under the assignment:
// the demand placed on it divided by its capacity, with oversubscription
// (more workers than slots) additionally scaling the load by the
// oversubscription factor, mirroring the simulator's host model.
func (p Problem) Utilizations(a Assignment) ([]float64, error) {
	if len(a.Workers) != len(p.Regions) {
		return nil, fmt.Errorf("placement: assignment covers %d regions, want %d", len(a.Workers), len(p.Regions))
	}
	demand := make([]float64, len(p.Hosts))
	workers := make([]int, len(p.Hosts))
	for ri, ws := range a.Workers {
		if len(ws) != p.Regions[ri].Workers {
			return nil, fmt.Errorf("placement: region %d has %d placed workers, want %d", ri, len(ws), p.Regions[ri].Workers)
		}
		per := p.Regions[ri].perWorkerDemand()
		for _, h := range ws {
			if h < 0 || h >= len(p.Hosts) {
				return nil, fmt.Errorf("placement: worker of region %d on host %d of %d", ri, h, len(p.Hosts))
			}
			demand[h] += per
			workers[h]++
		}
	}
	utils := make([]float64, len(p.Hosts))
	for h := range p.Hosts {
		util := demand[h] / p.Hosts[h].Capacity()
		if over := workers[h] - p.Hosts[h].Slots; over > 0 {
			// Oversubscribed hosts context-switch: effective capacity is
			// unchanged but scheduling overhead grows with the excess.
			util *= float64(workers[h]) / float64(p.Hosts[h].Slots)
		}
		utils[h] = util
	}
	return utils, nil
}

// Objective returns the maximum host utilization — the quantity both the
// paper's local model and this global placement minimize.
func (p Problem) Objective(a Assignment) (float64, error) {
	utils, err := p.Utilizations(a)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, u := range utils {
		if u > worst {
			worst = u
		}
	}
	return worst, nil
}

// Greedy places workers one at a time, worst-fit: each worker (regions
// ordered by per-worker demand, heaviest first) goes to the host whose
// utilization after placement is smallest. This is the classic greedy for
// minimax scheduling (a 4/3-approximation for makespan on uniform machines)
// and is the starting point for Improve.
func Greedy(p Problem) (Assignment, error) {
	if err := p.validate(); err != nil {
		return Assignment{}, err
	}
	type workerRef struct {
		region int
		demand float64
	}
	var workers []workerRef
	for ri, r := range p.Regions {
		per := r.perWorkerDemand()
		for w := 0; w < r.Workers; w++ {
			workers = append(workers, workerRef{region: ri, demand: per})
		}
	}
	sort.SliceStable(workers, func(i, j int) bool { return workers[i].demand > workers[j].demand })

	demand := make([]float64, len(p.Hosts))
	count := make([]int, len(p.Hosts))
	a := Assignment{Workers: make([][]int, len(p.Regions))}
	utilAfter := func(h int, extra float64) float64 {
		u := (demand[h] + extra) / p.Hosts[h].Capacity()
		if over := count[h] + 1 - p.Hosts[h].Slots; over > 0 {
			u *= float64(count[h]+1) / float64(p.Hosts[h].Slots)
		}
		return u
	}
	for _, w := range workers {
		best, bestUtil := -1, math.Inf(1)
		for h := range p.Hosts {
			if u := utilAfter(h, w.demand); u < bestUtil {
				best, bestUtil = h, u
			}
		}
		demand[best] += w.demand
		count[best]++
		a.Workers[w.region] = append(a.Workers[w.region], best)
	}
	return a, nil
}

// sortedUtils returns the utilization vector sorted descending: the
// lexicographic objective the local search minimizes. Comparing whole
// vectors instead of just the maximum lets the search drain the second-worst
// host while the worst is momentarily tied — pure-max local search stalls on
// such plateaus.
func (p Problem) sortedUtils(a Assignment) ([]float64, error) {
	utils, err := p.Utilizations(a)
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(utils)))
	return utils, nil
}

// lexLess reports whether a is lexicographically smaller than b (both sorted
// descending) beyond floating-point noise.
func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		switch {
		case a[i] < b[i]-1e-12:
			return true
		case a[i] > b[i]+1e-12:
			return false
		}
	}
	return false
}

// Improve runs a local search over single-worker moves and pairwise swaps:
// while some move of one worker to another host — or an exchange of two
// workers' hosts — lowers the (lexicographic) objective, take the best such
// step, spending at most maxMoves worker moves (a swap costs two). It
// returns the improved assignment and the number of worker moves taken.
func Improve(p Problem, a Assignment, maxMoves int) (Assignment, int, error) {
	if err := p.validate(); err != nil {
		return Assignment{}, 0, err
	}
	current := a.Clone()
	obj, err := p.sortedUtils(current)
	if err != nil {
		return Assignment{}, 0, err
	}
	// Flat worker references for the swap neighborhood.
	type ref struct{ region, worker int }
	var refs []ref
	for ri, ws := range current.Workers {
		for wi := range ws {
			refs = append(refs, ref{region: ri, worker: wi})
		}
	}
	hostOf := func(r ref) int { return current.Workers[r.region][r.worker] }
	setHost := func(r ref, h int) { current.Workers[r.region][r.worker] = h }

	moves := 0
	for moves < maxMoves {
		bestObj := obj
		bestMove := ref{region: -1}
		bestHost := -1
		// Single-worker moves.
		for _, r := range refs {
			orig := hostOf(r)
			for h := range p.Hosts {
				if h == orig {
					continue
				}
				setHost(r, h)
				cand, err := p.sortedUtils(current)
				if err != nil {
					setHost(r, orig)
					return Assignment{}, 0, err
				}
				if lexLess(cand, bestObj) {
					bestObj = cand
					bestMove, bestHost = r, h
				}
				setHost(r, orig)
			}
		}
		if bestMove.region >= 0 {
			setHost(bestMove, bestHost)
			obj = bestObj
			moves++
			continue
		}
		// No single move helps: try pairwise swaps (two moves each).
		if maxMoves-moves < 2 {
			break
		}
		swapA, swapB := ref{region: -1}, ref{region: -1}
		for i := 0; i < len(refs); i++ {
			for j := i + 1; j < len(refs); j++ {
				ha, hb := hostOf(refs[i]), hostOf(refs[j])
				if ha == hb {
					continue
				}
				setHost(refs[i], hb)
				setHost(refs[j], ha)
				cand, err := p.sortedUtils(current)
				if err == nil && lexLess(cand, bestObj) {
					bestObj = cand
					swapA, swapB = refs[i], refs[j]
				}
				setHost(refs[i], ha)
				setHost(refs[j], hb)
			}
		}
		if swapA.region < 0 {
			break
		}
		ha, hb := hostOf(swapA), hostOf(swapB)
		setHost(swapA, hb)
		setHost(swapB, ha)
		obj = bestObj
		moves += 2
	}
	return current, moves, nil
}

// Place computes an assignment: greedy worst-fit followed by local search.
func Place(p Problem) (Assignment, error) {
	a, err := Greedy(p)
	if err != nil {
		return Assignment{}, err
	}
	improved, _, err := Improve(p, a, 10*totalWorkers(p))
	if err != nil {
		return Assignment{}, err
	}
	return improved, nil
}

func totalWorkers(p Problem) int {
	n := 0
	for _, r := range p.Regions {
		n += r.Workers
	}
	return n
}

// Rebalance adapts an existing assignment to changed demands while moving at
// most maxMoves workers — the global analogue of the local model's
// incremental weight constraints: a worker move means draining and
// restarting a PE, so churn is bounded. It returns the new assignment and
// the moves actually taken.
func Rebalance(p Problem, current Assignment, maxMoves int) (Assignment, int, error) {
	if err := p.validate(); err != nil {
		return Assignment{}, 0, err
	}
	if _, err := p.Objective(current); err != nil {
		return Assignment{}, 0, err
	}
	return Improve(p, current, maxMoves)
}

// MovedWorkers counts the workers whose host differs between two
// assignments of the same shape.
func MovedWorkers(a, b Assignment) int {
	moved := 0
	for ri := range a.Workers {
		if ri >= len(b.Workers) {
			break
		}
		for wi := range a.Workers[ri] {
			if wi < len(b.Workers[ri]) && a.Workers[ri][wi] != b.Workers[ri][wi] {
				moved++
			}
		}
	}
	return moved
}
