package placement

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoHosts() []Host {
	return []Host{
		{Name: "fast", Slots: 16, Speed: 60},
		{Name: "slow", Slots: 8, Speed: 50},
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
	}{
		{"no hosts", Problem{Regions: []Region{{Name: "r", Workers: 1}}}},
		{"no regions", Problem{Hosts: twoHosts()}},
		{"zero slots", Problem{Hosts: []Host{{Name: "h", Speed: 1}}, Regions: []Region{{Name: "r", Workers: 1}}}},
		{"zero speed", Problem{Hosts: []Host{{Name: "h", Slots: 1}}, Regions: []Region{{Name: "r", Workers: 1}}}},
		{"zero workers", Problem{Hosts: twoHosts(), Regions: []Region{{Name: "r"}}}},
		{"negative demand", Problem{Hosts: twoHosts(), Regions: []Region{{Name: "r", Workers: 1, Demand: -1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Greedy(tt.p); err == nil {
				t.Fatal("invalid problem accepted")
			}
		})
	}
}

func TestGreedyCoversAllWorkers(t *testing.T) {
	p := Problem{
		Hosts: twoHosts(),
		Regions: []Region{
			{Name: "a", Workers: 6, Demand: 300},
			{Name: "b", Workers: 10, Demand: 100},
		},
	}
	a, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workers) != 2 || len(a.Workers[0]) != 6 || len(a.Workers[1]) != 10 {
		t.Fatalf("assignment shape %v, want [6 10]", a.Workers)
	}
	if _, err := p.Objective(a); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPrefersFasterHost(t *testing.T) {
	// One worker, two hosts: it must land on the faster one.
	p := Problem{
		Hosts:   []Host{{Name: "slow", Slots: 8, Speed: 10}, {Name: "fast", Slots: 8, Speed: 100}},
		Regions: []Region{{Name: "r", Workers: 1, Demand: 50}},
	}
	a, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Workers[0][0] != 1 {
		t.Fatalf("worker placed on host %d, want the fast host 1", a.Workers[0][0])
	}
}

func TestUtilizationsOversubscriptionPenalty(t *testing.T) {
	p := Problem{
		Hosts:   []Host{{Name: "h", Slots: 2, Speed: 100}},
		Regions: []Region{{Name: "r", Workers: 4, Demand: 100}},
	}
	a := Assignment{Workers: [][]int{{0, 0, 0, 0}}}
	utils, err := p.Utilizations(a)
	if err != nil {
		t.Fatal(err)
	}
	// Base utilization 100/200 = 0.5, scaled by 4/2 oversubscription.
	if math.Abs(utils[0]-1.0) > 1e-12 {
		t.Fatalf("utilization = %v, want 1.0 with oversubscription penalty", utils[0])
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nHosts := 2 + rng.Intn(3)
		hosts := make([]Host, nHosts)
		for h := range hosts {
			hosts[h] = Host{Name: "h", Slots: 1 + rng.Intn(8), Speed: 10 + rng.Float64()*90}
		}
		nRegions := 1 + rng.Intn(3)
		regions := make([]Region, nRegions)
		for r := range regions {
			regions[r] = Region{Name: "r", Workers: 1 + rng.Intn(6), Demand: rng.Float64() * 500}
		}
		p := Problem{Hosts: hosts, Regions: regions}
		a, err := Greedy(p)
		if err != nil {
			return false
		}
		before, err := p.Objective(a)
		if err != nil {
			return false
		}
		improved, _, err := Improve(p, a, 50)
		if err != nil {
			return false
		}
		after, err := p.Objective(improved)
		if err != nil {
			return false
		}
		return after <= before+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// bruteBest enumerates every assignment of a tiny instance.
func bruteBest(p Problem) float64 {
	total := 0
	for _, r := range p.Regions {
		total += r.Workers
	}
	best := math.Inf(1)
	a := Assignment{Workers: make([][]int, len(p.Regions))}
	for ri, r := range p.Regions {
		a.Workers[ri] = make([]int, r.Workers)
	}
	var recurse func(flat int)
	recurse = func(flat int) {
		if flat == total {
			if obj, err := p.Objective(a); err == nil && obj < best {
				best = obj
			}
			return
		}
		ri, wi := flat, 0
		for ri < len(p.Regions) && p.Regions[ri].Workers <= 0 {
			ri++
		}
		// Map flat index to (region, worker).
		rem := flat
		for ri = 0; ri < len(p.Regions); ri++ {
			if rem < p.Regions[ri].Workers {
				wi = rem
				break
			}
			rem -= p.Regions[ri].Workers
		}
		for h := range p.Hosts {
			a.Workers[ri][wi] = h
			recurse(flat + 1)
		}
	}
	recurse(0)
	return best
}

func TestPlaceNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		nHosts := 2 + rng.Intn(2)
		hosts := make([]Host, nHosts)
		for h := range hosts {
			hosts[h] = Host{Name: "h", Slots: 1 + rng.Intn(3), Speed: 10 + rng.Float64()*90}
		}
		regions := []Region{
			{Name: "a", Workers: 1 + rng.Intn(3), Demand: rng.Float64() * 200},
			{Name: "b", Workers: 1 + rng.Intn(2), Demand: rng.Float64() * 200},
		}
		p := Problem{Hosts: hosts, Regions: regions}
		a, err := Place(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Objective(a)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteBest(p)
		// Greedy + local search: allow 35% over the optimum.
		if got > want*1.35+1e-9 {
			t.Fatalf("trial %d: objective %.4f vs optimal %.4f (hosts=%+v regions=%+v)",
				trial, got, want, hosts, regions)
		}
	}
}

func TestRebalanceBoundsMoves(t *testing.T) {
	p := Problem{
		Hosts: twoHosts(),
		Regions: []Region{
			{Name: "a", Workers: 8, Demand: 200},
			{Name: "b", Workers: 8, Demand: 200},
		},
	}
	a, err := Place(p)
	if err != nil {
		t.Fatal(err)
	}
	// Demand shifts heavily to region a.
	p.Regions[0].Demand = 900
	p.Regions[1].Demand = 50
	rebalanced, moves, err := Rebalance(p, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if moves > 3 {
		t.Fatalf("rebalance took %d moves, limit 3", moves)
	}
	if got := MovedWorkers(a, rebalanced); got != moves {
		t.Fatalf("MovedWorkers = %d, reported moves = %d", got, moves)
	}
	before, err := p.Objective(a)
	if err != nil {
		t.Fatal(err)
	}
	after, err := p.Objective(rebalanced)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("rebalance worsened objective: %.4f -> %.4f", before, after)
	}
}

func TestObjectiveErrors(t *testing.T) {
	p := Problem{Hosts: twoHosts(), Regions: []Region{{Name: "r", Workers: 2, Demand: 10}}}
	if _, err := p.Objective(Assignment{Workers: [][]int{{0}}}); err == nil {
		t.Fatal("wrong worker count accepted")
	}
	if _, err := p.Objective(Assignment{Workers: [][]int{{0, 9}}}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if _, err := p.Objective(Assignment{}); err == nil {
		t.Fatal("missing regions accepted")
	}
}

func TestHostCapacity(t *testing.T) {
	h := Host{Slots: 8, Speed: 50}
	if got := h.Capacity(); got != 400 {
		t.Fatalf("Capacity = %v, want 400", got)
	}
}
