package placement

import (
	"testing"
)

// Membership edits — hosts joining, leaving, and rejoining the cluster — are
// expressed as a new Problem with an edited host list plus a migration of the
// old assignment: host indices shift when a host leaves, and workers stranded
// on the departed host need a temporary home before Rebalance can spread them
// out. These tests pin that contract: stale assignments referencing a removed
// host are rejected loudly, migrated assignments rebalance within the move
// budget, and a re-added host is picked up again.

// removeHost deletes hosts[idx] and returns the edited host list.
func removeHost(hosts []Host, idx int) []Host {
	out := append([]Host(nil), hosts[:idx]...)
	return append(out, hosts[idx+1:]...)
}

// migrateAfterRemoval rewrites an assignment for a cluster that lost
// hosts[removed]: indices above the hole shift down, and stranded workers are
// parked on fallback (an index in the *new* host list) for Rebalance to
// redistribute.
func migrateAfterRemoval(a Assignment, removed, fallback int) Assignment {
	out := a.Clone()
	for ri, ws := range out.Workers {
		for wi, h := range ws {
			switch {
			case h == removed:
				out.Workers[ri][wi] = fallback
			case h > removed:
				out.Workers[ri][wi] = h - 1
			}
		}
	}
	return out
}

// editOp is one membership change applied to the running cluster.
type editOp struct {
	// add, when non-nil, joins a host at the end of the list.
	add *Host
	// remove, when >= 0, drops that host index; its workers are parked on
	// host 0 of the edited list.
	remove int
}

func TestMembershipEditSequences(t *testing.T) {
	base := Problem{
		Hosts: []Host{
			{Name: "h0", Slots: 8, Speed: 50},
			{Name: "h1", Slots: 8, Speed: 50},
		},
		Regions: []Region{
			{Name: "a", Workers: 6, Demand: 300},
			{Name: "b", Workers: 6, Demand: 300},
		},
	}
	fast := Host{Name: "h2-fast", Slots: 16, Speed: 100}
	tiny := Host{Name: "h3-tiny", Slots: 1, Speed: 1}

	for _, tc := range []struct {
		name  string
		edits []editOp
		// wantHosts is the expected cluster size after all edits.
		wantHosts int
		// wantNewHostUsed asserts the last added host carries at least one
		// worker after rebalancing.
		wantNewHostUsed bool
	}{
		{
			name:            "add fast host",
			edits:           []editOp{{add: &fast, remove: -1}},
			wantHosts:       3,
			wantNewHostUsed: true,
		},
		{
			name:      "remove host",
			edits:     []editOp{{remove: 1}},
			wantHosts: 1,
		},
		{
			name:            "remove then re-add",
			edits:           []editOp{{remove: 1}, {add: &Host{Name: "h1", Slots: 8, Speed: 50}, remove: -1}},
			wantHosts:       2,
			wantNewHostUsed: true,
		},
		{
			name:            "add, remove the original, re-add it",
			edits:           []editOp{{add: &fast, remove: -1}, {remove: 0}, {add: &Host{Name: "h0", Slots: 8, Speed: 50}, remove: -1}},
			wantHosts:       3,
			wantNewHostUsed: true,
		},
		{
			name:      "add tiny host attracts no load",
			edits:     []editOp{{add: &tiny, remove: -1}},
			wantHosts: 3,
			// 1 slot at speed 1 against 600 demand: rebalancing must leave
			// it idle rather than chase it.
			wantNewHostUsed: false,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := Problem{Hosts: append([]Host(nil), base.Hosts...), Regions: base.Regions}
			a, err := Place(p)
			if err != nil {
				t.Fatal(err)
			}
			for step, e := range tc.edits {
				if e.remove >= 0 {
					// The stale assignment still references the departed
					// host: every consumer must reject it, not mis-bill load.
					stale := Problem{Hosts: removeHost(p.Hosts, e.remove), Regions: p.Regions}
					if _, err := stale.Utilizations(a); err == nil && e.remove == len(p.Hosts)-1 {
						t.Fatalf("step %d: stale assignment accepted after removing last host", step)
					}
					a = migrateAfterRemoval(a, e.remove, 0)
					p = stale
				}
				if e.add != nil {
					p = Problem{Hosts: append(append([]Host(nil), p.Hosts...), *e.add), Regions: p.Regions}
					// Adding a host never invalidates the assignment.
					if _, err := p.Objective(a); err != nil {
						t.Fatalf("step %d: assignment broken by host join: %v", step, err)
					}
				}
				before, err := p.Objective(a)
				if err != nil {
					t.Fatalf("step %d: migrated assignment invalid: %v", step, err)
				}
				const budget = 6
				rebalanced, moves, err := Rebalance(p, a, budget)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if moves > budget {
					t.Fatalf("step %d: %d moves, budget %d", step, moves, budget)
				}
				if got := MovedWorkers(a, rebalanced); got != moves {
					t.Fatalf("step %d: MovedWorkers = %d, reported %d", step, got, moves)
				}
				after, err := p.Objective(rebalanced)
				if err != nil {
					t.Fatal(err)
				}
				if after > before+1e-12 {
					t.Fatalf("step %d: rebalance worsened objective %.4f -> %.4f", step, before, after)
				}
				a = rebalanced
			}
			if len(p.Hosts) != tc.wantHosts {
				t.Fatalf("cluster has %d hosts, want %d", len(p.Hosts), tc.wantHosts)
			}
			last := len(p.Hosts) - 1
			onLast := 0
			for _, ws := range a.Workers {
				for _, h := range ws {
					if h == last {
						onLast++
					}
				}
			}
			if tc.wantNewHostUsed && onLast == 0 {
				t.Fatalf("added host %s carries no workers after rebalance", p.Hosts[last].Name)
			}
			if !tc.wantNewHostUsed && len(tc.edits) > 0 && tc.edits[len(tc.edits)-1].add == &tiny && onLast != 0 {
				t.Fatalf("tiny host attracted %d workers", onLast)
			}
		})
	}
}

// TestMembershipStaleAssignmentRejected pins the error paths: after a host
// leaves, the un-migrated assignment must be rejected by every consumer.
func TestMembershipStaleAssignmentRejected(t *testing.T) {
	p := Problem{
		Hosts:   []Host{{Name: "h0", Slots: 4, Speed: 50}, {Name: "h1", Slots: 4, Speed: 50}},
		Regions: []Region{{Name: "r", Workers: 4, Demand: 100}},
	}
	a, err := Place(p)
	if err != nil {
		t.Fatal(err)
	}
	// Pin at least one worker to the host about to leave so the stale
	// assignment really does dangle.
	a.Workers[0][0] = 1
	shrunk := Problem{Hosts: p.Hosts[:1], Regions: p.Regions}
	if _, err := shrunk.Utilizations(a); err == nil {
		t.Fatal("Utilizations accepted an assignment referencing a removed host")
	}
	if _, err := shrunk.Objective(a); err == nil {
		t.Fatal("Objective accepted a stale assignment")
	}
	if _, _, err := Rebalance(shrunk, a, 4); err == nil {
		t.Fatal("Rebalance accepted a stale assignment")
	}
	// Migration repairs it.
	migrated := migrateAfterRemoval(a, 1, 0)
	if _, err := shrunk.Objective(migrated); err != nil {
		t.Fatalf("migrated assignment rejected: %v", err)
	}
}

// TestMembershipRemovalConservesWorkers: migration after a removal keeps the
// assignment shape — every worker still placed, none duplicated or dropped —
// and total demand billed to hosts is unchanged.
func TestMembershipRemovalConservesWorkers(t *testing.T) {
	p := Problem{
		Hosts: []Host{
			{Name: "h0", Slots: 4, Speed: 50},
			{Name: "h1", Slots: 4, Speed: 50},
			{Name: "h2", Slots: 4, Speed: 50},
		},
		Regions: []Region{
			{Name: "a", Workers: 5, Demand: 200},
			{Name: "b", Workers: 3, Demand: 90},
		},
	}
	a, err := Place(p)
	if err != nil {
		t.Fatal(err)
	}
	shrunk := Problem{Hosts: removeHost(p.Hosts, 1), Regions: p.Regions}
	migrated := migrateAfterRemoval(a, 1, 0)
	utils, err := shrunk.Utilizations(migrated)
	if err != nil {
		t.Fatal(err)
	}
	if len(utils) != 2 {
		t.Fatalf("%d hosts billed, want 2", len(utils))
	}
	for ri, r := range p.Regions {
		if len(migrated.Workers[ri]) != r.Workers {
			t.Fatalf("region %s has %d workers after migration, want %d", r.Name, len(migrated.Workers[ri]), r.Workers)
		}
	}
	// Worker conservation across the migration: counting placements per
	// surviving host accounts for every worker exactly once.
	placed := 0
	for _, ws := range migrated.Workers {
		for _, h := range ws {
			if h < 0 || h >= len(shrunk.Hosts) {
				t.Fatalf("migrated worker on host %d of %d", h, len(shrunk.Hosts))
			}
			placed++
		}
	}
	if want := 5 + 3; placed != want {
		t.Fatalf("%d workers placed after migration, want %d", placed, want)
	}
	// Migration parked h1's workers somewhere real: some surviving host is
	// billed strictly more than before the edit would imply zero.
	if utils[0] <= 0 && utils[1] <= 0 {
		t.Fatal("no demand billed after migration")
	}
}
