// Package schema holds the versioning contract for every JSON document the
// experiment tooling archives — soak summaries, benchjson reports, dispatcher
// specs and results — plus the shared benchmark-report types those documents
// embed.
//
// Versions are "MAJOR.MINOR" strings. Decoders accept any document whose
// major matches their own (minor bumps are additive: new optional fields) and
// reject any other major loudly, so a result archive written by a future
// incompatible tool can never be silently misread as an empty or zeroed run.
// An absent version is accepted as legacy v1: the BENCH_*.json and
// SOAK_*.json files archived before versioning existed predate the field and
// must keep parsing.
package schema

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// BenchVersion is the current benchjson report schema.
const BenchVersion = "1.0"

// BenchMajor is the major component of BenchVersion.
const BenchMajor = 1

// Major extracts the major component of a "MAJOR.MINOR" version string.
func Major(version string) (int, error) {
	head, _, _ := strings.Cut(version, ".")
	m, err := strconv.Atoi(head)
	if err != nil || m < 0 {
		return 0, fmt.Errorf("schema: malformed version %q", version)
	}
	return m, nil
}

// Check accepts a document version against the decoder's major. Empty means
// legacy v1 and is accepted when the decoder speaks major 1. doc names the
// document kind in errors ("soak summary", "bench report", ...).
func Check(doc, version string, major int) error {
	if version == "" {
		if major == 1 {
			return nil
		}
		return fmt.Errorf("schema: %s has no schema_version; this decoder requires major %d", doc, major)
	}
	got, err := Major(version)
	if err != nil {
		return fmt.Errorf("schema: %s: %w", doc, err)
	}
	if got != major {
		return fmt.Errorf("schema: %s schema_version %s has major %d, this decoder speaks major %d", doc, version, got, major)
	}
	return nil
}

// BenchResult is one benchmark line of a benchjson report: every metric on
// the line keyed by unit, including custom ones (tuples/s, blockrate, ...).
type BenchResult struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchReport is the whole benchmark run — the document cmd/benchjson emits,
// cmd/benchguard compares, and dispatcher results embed as their bench rows.
type BenchReport struct {
	SchemaVersion string        `json:"schema_version,omitempty"`
	Goos          string        `json:"goos,omitempty"`
	Goarch        string        `json:"goarch,omitempty"`
	CPU           string        `json:"cpu,omitempty"`
	Results       []BenchResult `json:"results"`
}

// DecodeBenchReport parses a benchjson document, rejecting unknown majors.
func DecodeBenchReport(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("schema: parse bench report: %w", err)
	}
	if err := Check("bench report", rep.SchemaVersion, BenchMajor); err != nil {
		return nil, err
	}
	return &rep, nil
}
