package schema

import (
	"strings"
	"testing"
)

func TestMajor(t *testing.T) {
	for _, tc := range []struct {
		version string
		want    int
		wantErr bool
	}{
		{"1.0", 1, false},
		{"1.7", 1, false},
		{"2.0", 2, false},
		{"10.3", 10, false},
		{"", 0, true},
		{"x.y", 0, true},
		{"-1.0", 0, true},
	} {
		got, err := Major(tc.version)
		if (err != nil) != tc.wantErr {
			t.Errorf("Major(%q) err = %v, wantErr %v", tc.version, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("Major(%q) = %d, want %d", tc.version, got, tc.want)
		}
	}
}

func TestCheck(t *testing.T) {
	for _, tc := range []struct {
		name    string
		version string
		major   int
		wantErr string
	}{
		{"current", "1.0", 1, ""},
		{"newer minor is additive", "1.9", 1, ""},
		{"legacy empty accepted at major 1", "", 1, ""},
		{"legacy empty rejected at major 2", "", 2, "no schema_version"},
		{"future major rejected", "2.0", 1, "major 2"},
		{"older major rejected", "1.0", 2, "major 1"},
		{"garbage rejected", "banana", 1, "malformed version"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := Check("test doc", tc.version, tc.major)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Check(%q, %d) = %v, want nil", tc.version, tc.major, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Check(%q, %d) = %v, want error containing %q", tc.version, tc.major, err, tc.wantErr)
			}
		})
	}
}

func TestDecodeBenchReport(t *testing.T) {
	for _, tc := range []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"versioned", `{"schema_version":"1.0","results":[{"pkg":"p","name":"BenchmarkX","iterations":1,"metrics":{"tuples/s":10}}]}`, ""},
		{"legacy unversioned (checked-in BENCH files)", `{"goos":"linux","results":[]}`, ""},
		{"future major", `{"schema_version":"2.0","results":[]}`, "major 2"},
		{"not json", `nope`, "parse bench report"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := DecodeBenchReport([]byte(tc.doc))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("DecodeBenchReport = %v, want nil", err)
				}
				if rep == nil {
					t.Fatal("nil report without error")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("DecodeBenchReport = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
