package quantile

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := New(p); err == nil {
			t.Fatalf("New(%v) accepted", p)
		}
	}
	if _, err := New(0.5); err != nil {
		t.Fatal(err)
	}
}

func TestValueBeforeData(t *testing.T) {
	e, err := New(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Value(); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestExactSmallSamples(t *testing.T) {
	e, err := New(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Add(10)
	e.Add(2)
	e.Add(7)
	v, err := e.Value()
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("median of {10,2,7} = %v, want 7", v)
	}
	if e.Count() != 3 {
		t.Fatalf("Count = %d, want 3", e.Count())
	}
}

// exactQuantile computes the reference quantile over a full sample.
func exactQuantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func TestAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		e, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 50_000)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
			e.Add(xs[i])
		}
		got, err := e.Value()
		if err != nil {
			t.Fatal(err)
		}
		want := exactQuantile(xs, p)
		if math.Abs(got-want) > 0.03*1000 {
			t.Fatalf("p=%v: estimate %.2f vs exact %.2f", p, got, want)
		}
	}
}

func TestAccuracyExponential(t *testing.T) {
	// Heavy-tailed data, the shape of latency distributions.
	rng := rand.New(rand.NewSource(6))
	e, err := New(0.99)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 80_000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 10
		e.Add(xs[i])
	}
	got, err := e.Value()
	if err != nil {
		t.Fatal(err)
	}
	want := exactQuantile(xs, 0.99)
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("p99 estimate %.2f vs exact %.2f", got, want)
	}
}

func TestEstimateWithinRangeProperty(t *testing.T) {
	// The estimate always lies within [min, max] of the observations.
	prop := func(seed int64, rawN uint16) bool {
		n := int(rawN%2000) + 1
		rng := rand.New(rand.NewSource(seed))
		e, err := New(0.9)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 100
			e.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		v, err := e.Value()
		if err != nil {
			return false
		}
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddIgnoresNaN(t *testing.T) {
	e, err := New(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Add(math.NaN())
	if e.Count() != 0 {
		t.Fatal("NaN counted")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	if tr.P50() != 0 || tr.P99() != 0 || tr.Mean() != 0 || tr.Max() != 0 {
		t.Fatal("empty tracker returned nonzero stats")
	}
	for i := 1; i <= 1000; i++ {
		tr.Add(float64(i))
	}
	if tr.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", tr.Count())
	}
	if math.Abs(tr.Mean()-500.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 500.5", tr.Mean())
	}
	if tr.Max() != 1000 {
		t.Fatalf("Max = %v, want 1000", tr.Max())
	}
	if p50 := tr.P50(); math.Abs(p50-500) > 25 {
		t.Fatalf("P50 = %v, want ~500", p50)
	}
	if p99 := tr.P99(); math.Abs(p99-990) > 25 {
		t.Fatalf("P99 = %v, want ~990", p99)
	}
}
