// Package quantile implements the P² (piecewise-parabolic) streaming
// quantile estimator of Jain & Chlamtac (1985): a constant-space estimate of
// an arbitrary quantile over an unbounded stream of observations. The
// simulator and runtime use it to report per-tuple end-to-end latency
// percentiles — the low-latency requirement that motivates the paper —
// without retaining per-tuple state.
package quantile

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Estimator tracks one quantile of a stream with five markers. The zero
// value is not usable; construct with New.
type Estimator struct {
	p     float64
	count int
	// Marker heights (the estimates) and positions.
	heights   [5]float64
	positions [5]float64
	desired   [5]float64
	increment [5]float64
	initial   []float64
}

// New returns an estimator for the p-quantile, 0 < p < 1.
func New(p float64) (*Estimator, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("quantile: p = %v outside (0,1)", p)
	}
	e := &Estimator{p: p, initial: make([]float64, 0, 5)}
	e.positions = [5]float64{1, 2, 3, 4, 5}
	e.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.increment = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// Add feeds one observation.
func (e *Estimator) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	e.count++
	if len(e.initial) < 5 {
		e.initial = append(e.initial, x)
		if len(e.initial) == 5 {
			sort.Float64s(e.initial)
			copy(e.heights[:], e.initial)
		}
		return
	}

	// Find the cell containing x and update extreme markers.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.positions[i]++
	}
	for i := range e.desired {
		e.desired[i] += e.increment[i]
	}

	// Adjust the three middle markers with the parabolic formula, falling
	// back to linear when the parabolic estimate leaves the bracket.
	for i := 1; i <= 3; i++ {
		d := e.desired[i] - e.positions[i]
		if (d >= 1 && e.positions[i+1]-e.positions[i] > 1) ||
			(d <= -1 && e.positions[i-1]-e.positions[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.positions[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *Estimator) parabolic(i int, sign float64) float64 {
	num1 := e.positions[i] - e.positions[i-1] + sign
	num2 := e.positions[i+1] - e.positions[i] - sign
	den := e.positions[i+1] - e.positions[i-1]
	term1 := num1 * (e.heights[i+1] - e.heights[i]) / (e.positions[i+1] - e.positions[i])
	term2 := num2 * (e.heights[i] - e.heights[i-1]) / (e.positions[i] - e.positions[i-1])
	return e.heights[i] + sign/den*(term1+term2)
}

// linear is the fallback height prediction.
func (e *Estimator) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return e.heights[i] + sign*(e.heights[j]-e.heights[i])/(e.positions[j]-e.positions[i])
}

// Count returns the number of observations.
func (e *Estimator) Count() int {
	return e.count
}

// ErrNoData is returned by Value before any observation arrives.
var ErrNoData = errors.New("quantile: no observations")

// Value returns the current quantile estimate. With fewer than five
// observations it returns the exact sample quantile.
func (e *Estimator) Value() (float64, error) {
	if e.count == 0 {
		return 0, ErrNoData
	}
	if len(e.initial) < 5 {
		sorted := append([]float64(nil), e.initial...)
		sort.Float64s(sorted)
		idx := int(math.Ceil(e.p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx], nil
	}
	return e.heights[2], nil
}

// Tracker bundles the usual latency quantiles plus mean and max.
type Tracker struct {
	p50, p99 *Estimator
	count    int
	sum      float64
	max      float64
}

// NewTracker returns a tracker for the median and the 99th percentile.
func NewTracker() *Tracker {
	p50, err := New(0.5)
	if err != nil {
		panic(err) // static parameter; cannot fail
	}
	p99, err := New(0.99)
	if err != nil {
		panic(err)
	}
	return &Tracker{p50: p50, p99: p99}
}

// Add feeds one observation.
func (t *Tracker) Add(x float64) {
	t.p50.Add(x)
	t.p99.Add(x)
	t.count++
	t.sum += x
	if x > t.max {
		t.max = x
	}
}

// Count returns the number of observations.
func (t *Tracker) Count() int { return t.count }

// Mean returns the arithmetic mean, or 0 with no data.
func (t *Tracker) Mean() float64 {
	if t.count == 0 {
		return 0
	}
	return t.sum / float64(t.count)
}

// Max returns the largest observation.
func (t *Tracker) Max() float64 { return t.max }

// P50 returns the median estimate, or 0 with no data.
func (t *Tracker) P50() float64 {
	v, err := t.p50.Value()
	if err != nil {
		return 0
	}
	return v
}

// P99 returns the 99th-percentile estimate, or 0 with no data.
func (t *Tracker) P99() float64 {
	v, err := t.p99.Value()
	if err != nil {
		return 0
	}
	return v
}
