// Package chaos provides a fault-injecting TCP proxy for testing the
// runtime's worker-failure recovery. A Proxy sits on any of a region's
// links (splitter->worker is the interesting one) and can, on demand or on
// a schedule, kill the live connections, add per-chunk delay, throttle
// bandwidth, or black-hole traffic entirely while keeping the connection
// open — the classic gray failure.
//
// The paper's evaluation (Section 5) varies load but never link health; the
// north-star deployment cannot afford that assumption, so the chaos layer
// exists to prove the recovery protocol (see DESIGN.md, "Failure model and
// recovery") under adversarial conditions rather than on the happy path.
package chaos
