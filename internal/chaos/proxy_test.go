package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoBackend accepts connections and echoes everything back.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				c.Close()
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestProxyPassThrough(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if p.Accepted() != 1 || p.Active() != 1 {
		t.Fatalf("accepted=%d active=%d, want 1 1", p.Accepted(), p.Active())
	}
}

func TestProxyKillActive(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Wait for the link to register, then kill it.
	deadline := time.Now().Add(5 * time.Second)
	for p.Active() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("link never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if n := p.KillActive(); n != 1 {
		t.Fatalf("killed %d links, want 1", n)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue // draining data echoed before the kill
		}
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("connection survived KillActive")
		}
		break
	}
}

func TestProxyRejectsNewConnections(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetReject(true)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		return // refused outright also counts as rejected
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected connection delivered data")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("rejected connection stayed open")
	}
	// Turning rejection off restores service.
	p.SetReject(false)
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn2, make([]byte, 1)); err != nil {
		t.Fatalf("service not restored after SetReject(false): %v", err)
	}
}

func TestProxyDelaySlowsTraffic(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetDelay(50 * time.Millisecond)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	// Two proxied hops (request + echo), each delayed 50ms.
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		t.Fatalf("round trip %v, want >= ~100ms with 50ms per-chunk delay", elapsed)
	}
}

func TestProxyThrottleCapsBandwidth(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetThrottle(64 << 10) // 64 KiB/s
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 32<<10) // half a second at the cap, echoed = 1s
	start := time.Now()
	go func() {
		conn.Write(payload)
	}()
	got := 0
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	for got < len(payload) {
		n, err := conn.Read(buf)
		got += n
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Fatalf("32KiB round trip in %v under a 64KiB/s cap: throttle not applied", elapsed)
	}
}

func TestProxyBlackholeDiscardsSilently(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	p.SetBlackhole(true)
	if _, err := conn.Write([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackholed traffic was delivered")
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("connection errored instead of staying silently open: %v", err)
	}
	// The connection itself is still alive — the gray-failure property.
	if p.Active() != 1 {
		t.Fatalf("active=%d, want 1 (connection must stay open)", p.Active())
	}
}

func TestProxySetBackendRetargets(t *testing.T) {
	ln1 := echoBackend(t)
	// Second backend prefixes every byte stream with '2'.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln2.Close() })
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write([]byte("2"))
				io.Copy(c, c)
				c.Close()
			}(conn)
		}
	}()
	p, err := NewProxy(ln1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetBackend(ln2.Addr().String())
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got := make([]byte, 1)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != '2' {
		t.Fatalf("connected to old backend after SetBackend (got %q)", got)
	}
}

func TestProxySchedule(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	done := p.Schedule(
		Step{After: 10 * time.Millisecond, Do: Delay(time.Millisecond)},
		Step{After: 10 * time.Millisecond, Do: Kill()},
	)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("schedule never completed")
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue
		}
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("scheduled Kill step did not sever the link")
		}
		break
	}
}

func TestProxyCloseAbortsSchedule(t *testing.T) {
	ln := echoBackend(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 1)
	done := p.Schedule(
		Step{After: 10 * time.Minute, Do: func(*Proxy) { fired <- struct{}{} }},
	)
	p.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not abort the schedule")
	}
	select {
	case <-fired:
		t.Fatal("aborted step still ran")
	default:
	}
}
