package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// chunkSize is the proxy's forwarding granularity. Small enough that delay
// and throttle act per-chunk rather than per-connection, large enough not
// to dominate CPU.
const chunkSize = 8 << 10

// Proxy is a TCP proxy that forwards between its listener and a backend,
// injecting faults on demand. All knobs may be flipped while connections
// are live; they apply to every link, in both directions, from the next
// chunk onward.
type Proxy struct {
	addr string // listen address, stable across reject cycles

	mu        sync.Mutex
	ln        net.Listener
	backend   string
	delay     time.Duration
	throttle  int // bytes per second; 0 = unlimited
	chunk     int // max bytes forwarded per read; 0 = chunkSize
	blackhole bool
	stall     bool // stop reading entirely; back-pressure builds upstream
	drip      int  // forward byte-by-byte at this rate; 0 = off
	reject    bool // refuse new connections (backend "down")
	links     map[*link]struct{}
	closed    bool
	accepted  int
	kills     int

	lnCh chan net.Listener // hands re-opened listeners to the accept loop
	stop chan struct{}
	wg   sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	server net.Conn
}

func (l *link) closeBoth() {
	l.client.Close()
	l.server.Close()
}

// NewProxy listens on a fresh loopback port and forwards connections to
// backend.
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		addr:    ln.Addr().String(),
		ln:      ln,
		backend: backend,
		links:   make(map[*link]struct{}),
		lnCh:    make(chan net.Listener, 1),
		stop:    make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial instead of the backend. It is
// stable across SetReject cycles.
func (p *Proxy) Addr() string {
	return p.addr
}

// SetBackend retargets new connections — e.g. at a restarted worker
// listening on a fresh port. Existing links are unaffected.
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// SetDelay adds a fixed delay before each forwarded chunk (0 disables).
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetThrottle caps forwarded bandwidth in bytes/second (0 disables).
func (p *Proxy) SetThrottle(bytesPerSec int) {
	p.mu.Lock()
	p.throttle = bytesPerSec
	p.mu.Unlock()
}

// SetChunk caps how many bytes the proxy forwards per read (0 restores the
// default chunkSize). Tiny values split the stream at arbitrary byte
// boundaries — mid-header, mid-payload — which is how the transport tests
// exercise partial-write and partial-read resumption.
func (p *Proxy) SetChunk(n int) {
	p.mu.Lock()
	p.chunk = n
	p.mu.Unlock()
}

// SetBlackhole, when on, silently discards all traffic in both directions
// while keeping connections open — a gray failure no error path reports.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// SetStall, when on, freezes every pump before its next read while keeping
// connections and the listener open. Unread bytes pile up in the proxy's
// kernel receive buffers until the upstream sender blocks — the straggler
// failure mode: a worker that accepts but never drains. SetStall(false)
// resumes forwarding, including everything queued during the stall.
func (p *Proxy) SetStall(on bool) {
	p.mu.Lock()
	p.stall = on
	p.mu.Unlock()
}

// SetSlowDrip forwards one byte at a time at the given rate (bytes/second),
// modelling a worker that is technically alive but uselessly slow — slow
// enough to stall the merge, yet never slow enough to trip a connection
// error on its own. 0 disables.
func (p *Proxy) SetSlowDrip(bytesPerSec int) {
	p.mu.Lock()
	if bytesPerSec < 0 {
		bytesPerSec = 0
	}
	p.drip = bytesPerSec
	p.mu.Unlock()
}

// SetReject, when on, closes the listener so new dials get connection
// refused — what a dialer sees while a killed worker has not come back yet.
// SetReject(false) re-listens on the same port. It returns an error only if
// the port could not be re-acquired.
func (p *Proxy) SetReject(on bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || on == p.reject {
		return nil
	}
	p.reject = on
	if on {
		p.ln.Close()
		return nil
	}
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		p.reject = true
		return fmt.Errorf("chaos: re-listen on %s: %w", p.addr, err)
	}
	p.ln = ln
	select {
	case p.lnCh <- ln:
	default:
	}
	return nil
}

// KillActive severs every live link (both sides), simulating the backend
// crashing mid-stream, and returns how many links died.
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	n := len(p.links)
	for l := range p.links {
		l.closeBoth()
	}
	p.kills += n
	p.mu.Unlock()
	return n
}

// Active returns the number of live links.
func (p *Proxy) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Accepted returns how many connections the proxy has admitted.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Close stops the proxy and severs all links.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for l := range p.links {
		l.closeBoth()
	}
	ln := p.ln
	p.mu.Unlock()
	close(p.stop)
	ln.Close()
	p.wg.Wait()
}

// Step is one scheduled fault: After the given duration (measured from the
// previous step), Do runs against the proxy.
type Step struct {
	After time.Duration
	Do    func(*Proxy)
}

// Schedule runs the steps sequentially in the background; Close aborts the
// remainder. It returns a channel closed when the script finishes.
func (p *Proxy) Schedule(steps ...Step) <-chan struct{} {
	done := make(chan struct{})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(done)
		for _, s := range steps {
			timer := time.NewTimer(s.After)
			select {
			case <-p.stop:
				timer.Stop()
				return
			case <-timer.C:
			}
			s.Do(p)
		}
	}()
	return done
}

// Kill returns a step action severing all live links.
func Kill() func(*Proxy) { return func(p *Proxy) { p.KillActive() } }

// Delay returns a step action setting the per-chunk delay.
func Delay(d time.Duration) func(*Proxy) { return func(p *Proxy) { p.SetDelay(d) } }

// Throttle returns a step action capping bandwidth.
func Throttle(bytesPerSec int) func(*Proxy) { return func(p *Proxy) { p.SetThrottle(bytesPerSec) } }

// Blackhole returns a step action toggling the gray-failure mode.
func Blackhole(on bool) func(*Proxy) { return func(p *Proxy) { p.SetBlackhole(on) } }

// Stall returns a step action toggling the accept-but-never-drain mode.
func Stall(on bool) func(*Proxy) { return func(p *Proxy) { p.SetStall(on) } }

// SlowDrip returns a step action toggling byte-at-a-time forwarding.
func SlowDrip(bytesPerSec int) func(*Proxy) { return func(p *Proxy) { p.SetSlowDrip(bytesPerSec) } }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		ln := p.ln
		closed := p.closed
		rejecting := p.reject
		p.mu.Unlock()
		if closed {
			return
		}
		if rejecting {
			// The listener is down; wait for SetReject(false) or Close.
			select {
			case <-p.stop:
				return
			case <-p.lnCh:
				continue
			}
		}
		client, err := ln.Accept()
		if err != nil {
			// Either Close or a reject cycle closed the listener; loop
			// to find out which.
			continue
		}
		p.mu.Lock()
		backend := p.backend
		drop := p.reject || p.closed
		p.mu.Unlock()
		if drop {
			client.Close()
			continue
		}
		server, err := net.Dial("tcp", backend)
		if err != nil {
			client.Close()
			continue
		}
		l := &link{client: client, server: server}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.closeBoth()
			continue
		}
		p.links[l] = struct{}{}
		p.accepted++
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(l, client, server)
		go p.pump(l, server, client)
	}
}

// pump forwards one direction of a link chunk by chunk, consulting the
// fault knobs before each write. On any error it severs the whole link.
func (p *Proxy) pump(l *link, from, to net.Conn) {
	defer p.wg.Done()
	defer p.unlink(l)
	buf := make([]byte, chunkSize)
	for {
		p.mu.Lock()
		rd := buf
		if p.chunk > 0 && p.chunk < len(buf) {
			rd = buf[:p.chunk]
		}
		stalled := p.stall
		if p.drip > 0 {
			rd = buf[:1]
		}
		p.mu.Unlock()
		// A stalled pump parks before the read: bytes queue in the kernel
		// until the sender blocks, and nothing is lost for the resume.
		for stalled {
			if !p.sleep(2 * time.Millisecond) {
				return
			}
			p.mu.Lock()
			stalled = p.stall
			p.mu.Unlock()
		}
		n, err := from.Read(rd)
		if n > 0 {
			p.mu.Lock()
			delay := p.delay
			throttle := p.throttle
			blackhole := p.blackhole
			drip := p.drip
			p.mu.Unlock()
			if delay > 0 {
				if !p.sleep(delay) {
					return
				}
			}
			if throttle > 0 {
				d := time.Duration(float64(n) / float64(throttle) * float64(time.Second))
				if !p.sleep(d) {
					return
				}
			}
			if drip > 0 {
				d := time.Duration(float64(n) / float64(drip) * float64(time.Second))
				if !p.sleep(d) {
					return
				}
			}
			if !blackhole {
				if _, werr := to.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate EOF but keep the reverse path open.
			if tc, ok := to.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// sleep waits d unless the proxy closes first.
func (p *Proxy) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-p.stop:
		return false
	case <-timer.C:
		return true
	}
}

// unlink removes and severs a link once either direction ends.
func (p *Proxy) unlink(l *link) {
	p.mu.Lock()
	if _, ok := p.links[l]; ok {
		delete(p.links, l)
	}
	p.mu.Unlock()
	l.closeBoth()
}
