module streambalance

go 1.22
