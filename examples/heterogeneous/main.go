// Heterogeneous: demonstrate load balancing across unequal hosts (the
// Section 6.5 scenario). A region with 24 worker PEs spans a "fast" host
// (8 cores, 2-way SMT, 3.6 GHz) and a "slow" host (8 cores, 3.0 GHz). With
// naive round-robin the whole region is gated by the slow host's PEs; with
// the blocking-rate balancer the fast host's connections earn proportionally
// more weight — and adding the slow host *improves* throughput instead of
// dragging it down.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hosts := []sim.HostSpec{sim.FastHost("fast"), sim.SlowHost("slow")}
	// Fill thread slots alternately: 16 PEs land on the fast host, 8 on
	// the slow one.
	var pes []sim.PESpec
	counts := []int{0, 0}
	for len(pes) < 24 {
		for h := range hosts {
			if len(pes) >= 24 {
				break
			}
			if counts[h] < hosts[h].ThreadSlots() {
				pes = append(pes, sim.PESpec{Host: h})
				counts[h]++
			}
		}
	}
	fmt.Printf("placement: %d PEs on %s, %d PEs on %s\n\n",
		counts[0], hosts[0].Name, counts[1], hosts[1].Name)

	const baseCost = 20_000 // integer multiplies per tuple
	runOnce := func(policy sim.Policy) (sim.Metrics, error) {
		s, err := sim.New(sim.Config{
			Hosts:    hosts,
			PEs:      pes,
			BaseCost: baseCost,
			Duration: 180 * time.Second,
			Policy:   policy,
		})
		if err != nil {
			return sim.Metrics{}, err
		}
		return s.Run()
	}

	rr, err := runOnce(sim.RoundRobin{})
	if err != nil {
		return err
	}

	balancer, err := core.NewBalancer(core.Config{Connections: len(pes), DecayEnabled: true})
	if err != nil {
		return err
	}
	policy := sim.NewBalancerPolicy(balancer, "LB-adaptive")
	lb, err := runOnce(policy)
	if err != nil {
		return err
	}
	if err := policy.Err(); err != nil {
		return err
	}

	fmt.Printf("%-14s %14s\n", "policy", "final tput/s")
	fmt.Printf("%-14s %14.0f\n", "Even-RR", rr.FinalThroughput)
	fmt.Printf("%-14s %14.0f\n", "Even-LB", lb.FinalThroughput)

	var fastUnits, slowUnits int
	for j, w := range lb.FinalWeights {
		if pes[j].Host == 0 {
			fastUnits += w
		} else {
			slowUnits += w
		}
	}
	fmt.Printf("\nbalanced weight share: fast host %.0f%%, slow host %.0f%%\n",
		float64(fastUnits)/10, float64(slowUnits)/10)
	fmt.Println("(the fast host holds 2/3 of the PEs and a higher per-PE clock,")
	fmt.Println(" so it should carry well over half of the tuples)")
	return nil
}
