// Clustering64: the Section 6.6 / Figure 12 scenario — 64 parallel channels
// in three capacity classes (20 channels at 100x external load, 20 at 5x,
// 24 unloaded). At this fan-out the per-channel blocking data is too sparse
// for 64 independent functions, so the balancer clusters channels with
// similar predictive functions and pools their data.
//
// The example prints the per-class weight trajectory and the clustering
// "heat map": one letter per channel, one row per sampled instant, letters
// identifying clusters. Three stable classes of clusters should emerge.
//
//	go run ./examples/clustering64
package main

import (
	"fmt"
	"log"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
)

const channels = 64

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// classOf assigns the Figure 12 load classes: channels 0-19 at 100x,
// 20-39 at 5x, 40-63 unloaded.
func classOf(j int) int {
	switch {
	case j < 20:
		return 0
	case j < 40:
		return 1
	default:
		return 2
	}
}

func run() error {
	hosts := make([]sim.HostSpec, 8)
	for i := range hosts {
		hosts[i] = sim.SlowHost(fmt.Sprintf("node%d", i))
	}
	pes := make([]sim.PESpec, channels)
	for j := range pes {
		pes[j].Host = j / 8
		switch classOf(j) {
		case 0:
			pes[j].Load = sim.ConstantLoad(100)
		case 1:
			pes[j].Load = sim.ConstantLoad(5)
		}
	}

	balancer, err := core.NewBalancer(core.Config{
		Connections:    channels,
		DecayEnabled:   true,
		ClusterEnabled: true,
	})
	if err != nil {
		return err
	}
	policy := sim.NewBalancerPolicy(balancer, "LB-adaptive")

	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	fmt.Println("t       mean weight per class [100x  5x  1x]   clusters")
	s, err := sim.New(sim.Config{
		Hosts:        hosts,
		PEs:          pes,
		BaseCost:     60_000,
		MultiplyTime: 50 * time.Nanosecond,
		Duration:     180 * time.Second,
		Policy:       policy,
		Observer: func(sn sim.Snapshot) {
			if int(sn.Now.Seconds())%10 != 0 {
				return
			}
			var sums [3]float64
			var counts [3]int
			for j, w := range sn.Weights {
				sums[classOf(j)] += float64(w)
				counts[classOf(j)]++
			}
			row := make([]byte, channels)
			for i := range row {
				row[i] = '.'
			}
			if clusters := balancer.LastClusters(); clusters != nil {
				for id, members := range clusters {
					for _, j := range members {
						row[j] = glyphs[id%len(glyphs)]
					}
				}
			}
			fmt.Printf("%-7v [%5.1f %5.1f %5.1f]                %s\n",
				sn.Now, sums[0]/float64(counts[0]), sums[1]/float64(counts[1]), sums[2]/float64(counts[2]), row)
		},
	})
	if err != nil {
		return err
	}
	m, err := s.Run()
	if err != nil {
		return err
	}
	if err := policy.Err(); err != nil {
		return err
	}
	fmt.Printf("\nfinal throughput: %.0f tuples/s\n", m.FinalThroughput)
	if clusters := balancer.LastClusters(); clusters != nil {
		fmt.Printf("final cluster count: %d (expect a handful, in three classes)\n", len(clusters))
	}
	return nil
}
