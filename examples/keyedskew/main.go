// Keyedskew: route a Zipf-skewed keyed stream through the same in-process
// region twice — once with hash grouping, once with Partial Key Grouping
// plus the per-key sum combiner — and watch the hot key stop being the
// bottleneck.
//
// At Zipf α=1.5 one key carries ~38% of the stream. Hash grouping pins it
// to a single worker, so the whole region drains at that worker's service
// rate; PKG splits the key across its two hash candidates (always picking
// the less loaded) and the combiner pre-reduces same-key tuples inside each
// worker batch, so the merger releases one carrier per fold instead of
// every raw tuple. The released stream stays strictly increasing and every
// sequence number is accounted for: Released + CombinedReleased == total.
//
//	go run ./examples/keyedskew
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	rt "streambalance/internal/runtime"
	"streambalance/internal/schedule"
	"streambalance/internal/sim"
	"streambalance/internal/transport"
)

const (
	workers = 8
	tuples  = 12_000
	keys    = 5_000
	alpha   = 1.5
	seed    = 1
	service = 20 * time.Microsecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hash, err := schedule.NewHashRouter(workers)
	if err != nil {
		return err
	}
	pkg, err := schedule.NewPKGRouter(workers)
	if err != nil {
		return err
	}

	fmt.Printf("zipf alpha=%g, %d keys, %d tuples, %d workers, %v service/tuple\n\n",
		float64(alpha), keys, tuples, workers, service)
	hashRate, err := runOnce("hash", hash, nil)
	if err != nil {
		return err
	}
	pkgRate, err := runOnce("pkg+combiner", pkg, rt.SumCombiner())
	if err != nil {
		return err
	}
	fmt.Printf("\npkg+combiner / hash = %.2fx tuples/s\n", pkgRate/hashRate)
	return nil
}

func runOnce(label string, router schedule.KeyRouter, combiner rt.Combiner) (float64, error) {
	ks := sim.NewZipfStream(keys, alpha, seed)
	payload := make([]byte, 16)
	payload[0] = 1 // little-endian unit value, summed by the combiner

	ops := make([]rt.Operator, workers)
	for i := range ops {
		// Sleep-based service: a hot worker's overload costs real wall
		// clock even when the host has fewer cores than the region has
		// workers.
		ops[i] = rt.NewServiceOperator(service)
	}
	var sum uint64
	region, err := rt.NewRegion(rt.RegionConfig{
		Transport: rt.TransportInproc,
		Operators: ops,
		KeyedSource: func(seq uint64) (uint64, []byte, bool) {
			if seq >= tuples {
				return 0, nil, false
			}
			return ks.Key(seq), payload, true
		},
		Router:   router,
		Combiner: combiner,
		Sink: func(t transport.Tuple, _ int) {
			if len(t.Payload) >= 8 {
				sum += binary.LittleEndian.Uint64(t.Payload)
			}
		},
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	res, err := region.Run()
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)

	if res.Released+res.CombinedReleased != tuples || !res.OrderPreserved || sum != tuples {
		return 0, fmt.Errorf("%s: released %d + %d combined of %d (sum %d, ordered %v)",
			label, res.Released, res.CombinedReleased, tuples, sum, res.OrderPreserved)
	}
	rate := float64(tuples) / elapsed.Seconds()
	max, mean := int64(0), float64(0)
	for _, n := range res.KeyedSent {
		if n > max {
			max = n
		}
		mean += float64(n)
	}
	mean /= float64(len(res.KeyedSent))
	fmt.Printf("%-14s %8.0f tuples/s   hottest worker %5d of mean %6.0f (%.2fx)   combiner hits %d\n",
		label, rate, max, mean, float64(max)/mean, res.CombinerHits)
	return rate, nil
}
