// TCP pipeline: the real-system counterpart of the simulator examples. One
// ordered data-parallel region runs as actual components over loopback TCP —
// splitter, three worker PEs, and the in-order merger — with the splitter
// measuring genuine kernel-level blocking time via non-blocking writes (the
// paper's MSG_DONTWAIT + select mechanism) and the balancer adjusting
// weights live.
//
// Worker 0 starts out slow (a per-tuple delay emulating an overloaded host —
// on a machine with few cores a CPU-burning worker would merely steal cycles
// from its siblings); halfway through the stream the load is removed. The
// balancer detects both conditions from blocking rates alone.
//
//	go run ./examples/tcppipeline
package main

import (
	"fmt"
	"log"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		tuples     = 100_000
		baseDelay  = 100 * time.Microsecond // ~10k tuples/s per worker
		heavyDelay = 2 * time.Millisecond   // 20x slower
	)
	heavy := runtime.NewDelayOperator(heavyDelay)
	operators := []runtime.Operator{
		heavy,
		runtime.NewDelayOperator(baseDelay),
		runtime.NewDelayOperator(baseDelay),
	}

	balancer, err := core.NewBalancer(core.Config{
		Connections:  len(operators),
		DecayEnabled: true,
	})
	if err != nil {
		return err
	}

	// Remove worker 0's extra load halfway through the stream.
	source := func(seq uint64) ([]byte, bool) {
		if seq == tuples/2 {
			heavy.SetDelay(baseDelay)
		}
		if seq >= tuples {
			return nil, false
		}
		return payload, true
	}

	fmt.Println("t          blocking rates              weights")
	region, err := runtime.NewRegion(runtime.RegionConfig{
		Operators:         operators,
		Source:            source,
		Balancer:          balancer,
		SampleInterval:    50 * time.Millisecond,
		SocketBufferBytes: 8 << 10,
		OnSample: func(now time.Duration, rates []float64, weights []int) {
			if now/(250*time.Millisecond) != (now-50*time.Millisecond)/(250*time.Millisecond) {
				fmt.Printf("%-10v %-27.3f %v\n", now.Truncate(time.Millisecond), rates, weights)
			}
		},
	})
	if err != nil {
		return err
	}
	res, err := region.Run()
	if err != nil {
		return err
	}

	fmt.Printf("\nreleased %d tuples in %v, order preserved: %v\n",
		res.Released, res.Elapsed.Truncate(time.Millisecond), res.OrderPreserved)
	fmt.Printf("tuples per connection: %v\n", res.PerConnSent)
	fmt.Printf("blocking time per connection: %v\n", res.TotalBlocking)
	return nil
}

var payload = make([]byte, 256)
