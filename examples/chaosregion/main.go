// Chaosregion: the fault-tolerance demo. A four-worker ordered region runs
// with recovery enabled while a chaos proxy on each splitter->worker link
// injects failures on a schedule: one worker's connections are killed
// mid-run and redialed back in, a second is killed permanently, and a third
// is throttled. The region must still release every tuple exactly once in
// strict sequence order.
//
// The example prints the recovery timeline (down / replay / rejoin events)
// and the final accounting, including how many replayed duplicates the
// merger dropped to keep the exactly-once guarantee. It also serves the
// region's observability endpoints on an ephemeral port — scrape
// /metrics or /trace while it runs to watch recovery counters move.
//
//	go run ./examples/chaosregion
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/core"
	"streambalance/internal/metrics"
	"streambalance/internal/runtime"
	"streambalance/internal/transport"
)

const (
	workers = 4
	tuples  = 200_000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	balancer, err := core.NewBalancer(core.Config{Connections: workers, DecayEnabled: true})
	if err != nil {
		return err
	}

	ops := make([]runtime.Operator, workers)
	for i := range ops {
		ops[i] = runtime.NewSpinOperator(2_000)
	}

	proxies := make([]*chaos.Proxy, workers)
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()

	start := time.Now()
	stamp := func() string { return time.Since(start).Truncate(time.Millisecond).String() }
	var released atomic.Uint64

	reg := metrics.New()
	trace := metrics.NewTrace(metrics.DefaultTraceCap)
	rm := runtime.NewRegionMetrics(reg, trace)
	msrv, err := metrics.Serve("127.0.0.1:0", reg, trace)
	if err != nil {
		return err
	}
	defer msrv.Close()
	fmt.Printf("observability: curl http://%s/metrics (or /trace)\n", msrv.Addr())

	region, err := runtime.NewRegion(runtime.RegionConfig{
		Metrics:        rm,
		Operators:      ops,
		Source:         runtime.ConstantSource(make([]byte, 128), tuples),
		Balancer:       balancer,
		SampleInterval: 50 * time.Millisecond,
		Sink: func(t transport.Tuple, conn int) {
			released.Add(1)
		},
		OnConnEvent: func(ev runtime.ConnEvent) {
			switch ev.Kind {
			case "down":
				fmt.Printf("%8s  worker %d DOWN (%v)\n", stamp(), ev.Conn, ev.Err)
			case "replay":
				fmt.Printf("%8s  worker %d REPLAY %d unreleased tuples to survivors\n",
					stamp(), ev.Conn, ev.Tuples)
			case "rejoin":
				fmt.Printf("%8s  worker %d REJOIN (weight re-learned from zero)\n",
					stamp(), ev.Conn)
			}
		},
		Recovery: runtime.RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 10 * time.Millisecond,
			Redial: &transport.RedialPolicy{
				Base: 20 * time.Millisecond,
				Max:  200 * time.Millisecond,
			},
		},
		WrapWorkerAddr: func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				log.Fatal(err)
			}
			proxies[i] = p
			return p.Addr()
		},
	})
	if err != nil {
		return err
	}

	// The chaos script. Worker 1's links are cut but the proxy keeps
	// accepting, so the splitter's redial brings it back: a crash-restart.
	// Worker 2 goes down for good: a permanent loss, its load shifts to
	// the survivors. Worker 3's link is throttled hard — not a failure,
	// just pressure the balancer routes around.
	proxies[1].Schedule(
		chaos.Step{After: 300 * time.Millisecond, Do: func(p *chaos.Proxy) {
			fmt.Printf("%8s  [chaos] cutting worker 1 links (restart)\n", stamp())
			p.KillActive()
		}},
	)
	proxies[2].Schedule(
		chaos.Step{After: 600 * time.Millisecond, Do: func(p *chaos.Proxy) {
			fmt.Printf("%8s  [chaos] killing worker 2 permanently\n", stamp())
			p.SetReject(true)
			p.KillActive()
		}},
	)
	proxies[3].Schedule(
		chaos.Step{After: 900 * time.Millisecond, Do: func(p *chaos.Proxy) {
			fmt.Printf("%8s  [chaos] throttling worker 3 to 256 KiB/s\n", stamp())
			p.SetThrottle(256 << 10)
		}},
	)

	fmt.Printf("streaming %d tuples through %d workers, chaos armed...\n", tuples, workers)
	res, err := region.Run()
	if err != nil {
		return fmt.Errorf("region failed: %w", err)
	}

	fmt.Printf("\n%8s  stream complete\n", stamp())
	fmt.Printf("released        %d of %d (sink saw %d)\n", res.Released, tuples, released.Load())
	fmt.Printf("order preserved %v\n", res.OrderPreserved)
	fmt.Printf("deduped replays %d\n", res.Deduped)
	fmt.Printf("per-worker sent %v (includes replays)\n", res.PerConnSent)
	fmt.Printf("final weights   %v\n", balancer.Weights())
	fmt.Printf("elapsed         %v\n", res.Elapsed.Truncate(time.Millisecond))
	sum := func(name string) float64 {
		v, _ := reg.SumAcross(name)
		return v
	}
	fmt.Printf("metrics         released=%.0f deduped=%.0f replays=%.0f rebalances=%.0f (trace %d events)\n",
		sum("spe_merger_tuples_released_total"),
		sum("spe_merger_deduped_total"),
		sum("spe_recovery_replays_total"),
		sum("spe_balancer_rebalances_total"),
		trace.Len())
	if res.Released != tuples || !res.OrderPreserved {
		return fmt.Errorf("exactly-once in-order release violated: released=%d order=%v",
			res.Released, res.OrderPreserved)
	}
	fmt.Println("\nevery tuple released exactly once, in order, despite the chaos.")
	return nil
}
