// Smoke tests for the examples: every example must vet clean, build, and —
// for the quick ones — actually run to completion. Examples are the repo's
// executable documentation; this suite keeps them from rotting as the
// packages they demonstrate evolve.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// examplesTable lists every example with its smoke policy. run=false marks
// demos whose full workload is too heavy for a test run (they stream 100k+
// tuples over real TCP for tens of seconds); those are still vetted and
// built.
var examplesTable = []struct {
	name    string
	run     bool
	timeout time.Duration
}{
	{name: "quickstart", run: true, timeout: 60 * time.Second},
	{name: "clustering64", run: true, timeout: 60 * time.Second},
	{name: "clusterplacement", run: true, timeout: 60 * time.Second},
	{name: "dataflowapp", run: true, timeout: 60 * time.Second},
	{name: "heterogeneous", run: true, timeout: 60 * time.Second},
	{name: "keyedskew", run: true, timeout: 60 * time.Second},
	{name: "chaosregion", run: false},
	{name: "tcppipeline", run: false},
}

func TestExamplesTableIsComplete(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	listed := make(map[string]bool, len(examplesTable))
	for _, e := range examplesTable {
		listed[e.name] = true
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if !listed[ent.Name()] {
			t.Errorf("example %q missing from the smoke table; add it (run or build-only)", ent.Name())
		}
	}
}

func TestExamplesSmoke(t *testing.T) {
	tmp := t.TempDir()
	for _, ex := range examplesTable {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			pkg := "streambalance/examples/" + ex.name

			vet := exec.Command("go", "vet", pkg)
			vet.Dir = ".."
			if out, err := vet.CombinedOutput(); err != nil {
				t.Fatalf("go vet %s: %v\n%s", pkg, err, out)
			}

			bin := filepath.Join(tmp, ex.name)
			build := exec.Command("go", "build", "-o", bin, pkg)
			build.Dir = ".."
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build %s: %v\n%s", pkg, err, out)
			}

			if !ex.run {
				return
			}
			if testing.Short() {
				t.Skip("example run skipped in short mode")
			}
			ctx, cancel := context.WithTimeout(context.Background(), ex.timeout)
			defer cancel()
			cmd := exec.CommandContext(ctx, bin)
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s did not finish within %v\n%s", ex.name, ex.timeout, out)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex.name, err, out)
			}
		})
	}
}
