// Quickstart: balance one ordered data-parallel region with three worker
// PEs, one of which is 10x slower due to simulated external load.
//
// The example drives the paper's full pipeline on the discrete-event
// simulator: the splitter measures per-connection TCP blocking rates, the
// balancer builds blocking-rate functions and solves the minimax resource
// allocation problem, and the allocation weights converge near the
// capacity-proportional split while throughput rises well above naive
// round-robin.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One 8-core host; PE 0 carries external load that makes its tuples
	// 10x more expensive.
	hosts := []sim.HostSpec{sim.SlowHost("node0")}
	pes := []sim.PESpec{
		{Host: 0, Load: sim.ConstantLoad(10)},
		{Host: 0},
		{Host: 0},
	}

	// The paper's model: LB-adaptive (decay enabled).
	balancer, err := core.NewBalancer(core.Config{
		Connections:  len(pes),
		DecayEnabled: true,
	})
	if err != nil {
		return err
	}
	policy := sim.NewBalancerPolicy(balancer, "LB-adaptive")

	fmt.Println("t        weights            blocking rates        tuples/s")
	s, err := sim.New(sim.Config{
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 1000, // 1,000 integer multiplies per tuple
		Duration: 60 * time.Second,
		Policy:   policy,
		Observer: func(sn sim.Snapshot) {
			if int(sn.Now.Seconds())%5 != 0 {
				return
			}
			fmt.Printf("%-8v %-18v %-21.2f %8.0f\n",
				sn.Now, sn.Weights, sn.BlockingRates, sn.Throughput)
		},
	})
	if err != nil {
		return err
	}
	m, err := s.Run()
	if err != nil {
		return err
	}
	if err := policy.Err(); err != nil {
		return err
	}

	fmt.Printf("\nfinal weights:    %v (capacity-proportional would be ~[48 476 476])\n", m.FinalWeights)
	fmt.Printf("final throughput: %.0f tuples/s\n", m.FinalThroughput)

	// For contrast: the same region under naive round-robin is gated by
	// the slowest PE.
	rr, err := sim.New(sim.Config{
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 1000,
		Duration: 60 * time.Second,
	})
	if err != nil {
		return err
	}
	rrMetrics, err := rr.Run()
	if err != nil {
		return err
	}
	fmt.Printf("round-robin:      %.0f tuples/s (%.1fx slower)\n",
		rrMetrics.FinalThroughput, m.FinalThroughput/rrMetrics.FinalThroughput)
	return nil
}
