// Dataflowapp: composable region→region dataflow. The application is two
// ordered data-parallel regions chained end to end with dataflow.RunChain —
// the first region's in-order merge feeds the second region's splitter
// through a bounded in-process edge, so ordering and back pressure both
// compose across the whole topology.
//
// Stage 1 ("featurize", 4-way, in-process shared-memory transport) parses
// synthetic transactions and computes a feature; stage 2 ("score", 4-way,
// loopback-TCP transport) runs the expensive scoring kernel. Mixing the
// transports is the point: each stage picks its own, and the chain — like
// the balancer — never needs to know which is which. A stateful audit in the
// final sink depends on seeing every transaction in its original order,
// which the chained ordered merges guarantee.
//
//	go run ./examples/dataflowapp
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"streambalance/internal/dataflow"
	"streambalance/internal/runtime"
	"streambalance/internal/transport"
)

const transactions = 30_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// featurizeOp turns a raw transaction record (id, amount) into a feature
// record (id, amount, feature). Stateless, so it parallelizes freely.
type featurizeOp struct{}

func (featurizeOp) Process(t transport.Tuple) transport.Tuple {
	id := binary.LittleEndian.Uint64(t.Payload[0:8])
	amount := binary.LittleEndian.Uint64(t.Payload[8:16])
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out[0:8], id)
	binary.LittleEndian.PutUint64(out[8:16], amount)
	binary.LittleEndian.PutUint64(out[16:24], amount*31)
	return transport.Tuple{Seq: t.Seq, Payload: out}
}

// scoreOp runs the deliberately expensive scoring kernel over the feature —
// the chain's bottleneck stage.
type scoreOp struct{}

func (scoreOp) Process(t transport.Tuple) transport.Tuple {
	feature := binary.LittleEndian.Uint64(t.Payload[16:24])
	acc := feature | 3
	for i := 0; i < 3000; i++ {
		acc = acc*1664525 + 1013904223
	}
	out := make([]byte, 24)
	copy(out, t.Payload[:16])
	binary.LittleEndian.PutUint64(out[16:24], acc)
	return transport.Tuple{Seq: t.Seq, Payload: out}
}

func run() error {
	featurize := runtime.RegionConfig{
		Transport: runtime.TransportInproc,
		Operators: []runtime.Operator{featurizeOp{}, featurizeOp{}, featurizeOp{}, featurizeOp{}},
		Source: func(seq uint64) ([]byte, bool) {
			if seq >= transactions {
				return nil, false
			}
			p := make([]byte, 16)
			binary.LittleEndian.PutUint64(p[0:8], seq)
			binary.LittleEndian.PutUint64(p[8:16], seq%997+1)
			return p, true
		},
	}

	// The stateful audit bounds the chain: it requires tuples in their
	// original order, which the chained in-order merges deliver.
	total := uint64(0)
	lastID := int64(-1)
	ordered := true
	consumed := 0
	score := runtime.RegionConfig{
		Transport: runtime.TransportTCP,
		Operators: []runtime.Operator{scoreOp{}, scoreOp{}, scoreOp{}, scoreOp{}},
		BatchSize: 16,
		Sink: func(t transport.Tuple, _ int) {
			id := int64(binary.LittleEndian.Uint64(t.Payload[0:8]))
			if id != lastID+1 {
				ordered = false
			}
			lastID = id
			total += binary.LittleEndian.Uint64(t.Payload[8:16])
			consumed++
		},
	}

	fmt.Printf("chain: featurize x%d (%s) -> score x%d (%s)\n",
		len(featurize.Operators), featurize.Transport,
		len(score.Operators), score.Transport)

	res, err := dataflow.RunChain([]runtime.RegionConfig{featurize, score}, dataflow.ChainOptions{EdgeCap: 512})
	if err != nil {
		return err
	}

	fmt.Printf("\nprocessed %d transactions in %v\n", consumed, res.Elapsed.Truncate(1e6))
	fmt.Printf("stateful audit saw original order: %v\n", ordered)
	wantTotal := uint64(0)
	for i := uint64(0); i < transactions; i++ {
		wantTotal += i%997 + 1
	}
	fmt.Printf("running total correct: %v (%d)\n", total == wantTotal, total)
	for i, sr := range res.Stages {
		fmt.Printf("stage %d: released %d, order preserved %v, per-worker sent %v\n",
			i, sr.Released, sr.OrderPreserved, sr.PerConnSent)
	}
	if !ordered || total != wantTotal || consumed != transactions {
		return fmt.Errorf("chain produced wrong output: ordered=%v total=%d consumed=%d", ordered, total, consumed)
	}
	return nil
}
