// Dataflowapp: the Section 2 programming model end to end. An application is
// written as operators connected by streams; the planner fuses stateless
// operators, discovers the data-parallel region, and replicates it behind a
// splitter and an in-order merger; the executor runs it on goroutines with
// the blocking-rate balancer driving the region's weights.
//
// The pipeline scores synthetic "transactions": an expensive stateless
// scoring chain (parallelized 8 ways), then a stateful running total that
// depends on seeing tuples in their original order — which the ordered merge
// guarantees.
//
//	go run ./examples/dataflowapp
package main

import (
	"fmt"
	"log"

	"streambalance/internal/dataflow"
)

const transactions = 60_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type txn struct {
	id     int
	amount int
	score  int
}

func run() error {
	g := dataflow.NewGraph("fraud-scoring")

	stream := g.Source("transactions", func(seq uint64) (any, bool) {
		if seq >= transactions {
			return nil, false
		}
		return txn{id: int(seq), amount: int(seq%997) + 1}, true
	})

	// Two stateless operators: the planner fuses them and parallelizes the
	// fused chain as one ordered region.
	scored := stream.
		Map("featurize", func(v any) any {
			t := v.(txn)
			t.score = t.amount * 31
			return t
		}).
		Map("score", func(v any) any {
			t := v.(txn)
			// Deliberately expensive: the region is the bottleneck stage.
			acc := t.score | 3
			for i := 0; i < 3000; i++ {
				acc *= 1664525
				acc += 1013904223
			}
			t.score = acc
			return t
		})

	// A stateful operator bounds the region; sequential semantics mean it
	// sees transactions in exactly their original order.
	total := 0
	lastID := -1
	ordered := true
	audited := scored.Map("audit-total", func(v any) any {
		t := v.(txn)
		if t.id != lastID+1 {
			ordered = false
		}
		lastID = t.id
		total += t.amount
		return t
	}, dataflow.Stateful())

	var consumed int
	audited.Sink("ledger", func(any) { consumed++ })

	plan, err := g.Plan(dataflow.PlanConfig{Width: 8})
	if err != nil {
		return err
	}
	fmt.Print(plan.String())

	res, err := dataflow.Execute(plan, dataflow.ExecConfig{})
	if err != nil {
		return err
	}

	fmt.Printf("\nprocessed %d transactions in %v\n", consumed, res.Elapsed.Truncate(1e6))
	fmt.Printf("stateful operator saw original order: %v\n", ordered)
	wantTotal := 0
	for i := 0; i < transactions; i++ {
		wantTotal += i%997 + 1
	}
	fmt.Printf("running total correct: %v (%d)\n", total == wantTotal, total)
	for _, region := range res.Regions {
		fmt.Printf("region %q x%d: final weights %v\n", region.Name, region.Width, region.FinalWeights)
		fmt.Printf("  tuples per replica: %v\n", region.Processed)
	}
	return nil
}
