// Clusterplacement: the paper's future work (Section 8) — cluster-wide load
// balancing by assigning the parallel worker PEs of several regions to many
// heterogeneous hosts. Placement minimizes the maximum host utilization (the
// local balancer's minimax objective, one level up), and when a region's
// demand changes it rebalances with a bounded number of worker moves, the
// global analogue of the local model's incremental weight constraints.
//
//	go run ./examples/clusterplacement
package main

import (
	"fmt"
	"log"

	"streambalance/internal/placement"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := placement.Problem{
		Hosts: []placement.Host{
			{Name: "fast-1", Slots: 16, Speed: 60},
			{Name: "fast-2", Slots: 16, Speed: 60},
			{Name: "slow-1", Slots: 8, Speed: 50},
			{Name: "slow-2", Slots: 8, Speed: 50},
		},
		Regions: []placement.Region{
			{Name: "ingest", Workers: 12, Demand: 1400},
			{Name: "score", Workers: 16, Demand: 200},
			{Name: "enrich", Workers: 8, Demand: 400},
		},
	}

	a, err := placement.Place(p)
	if err != nil {
		return err
	}
	printAssignment("initial placement", p, a)

	// A data burst hits "score" — its demand grows twenty-fold, and the
	// placement chosen for the light-scoring era is now lopsided. Rebalance
	// with at most 6 worker moves: each move means draining and restarting
	// a PE, so churn is bounded exactly like the local model's incremental
	// weight constraints.
	p.Regions[1].Demand = 4200
	before, err := p.Objective(a)
	if err != nil {
		return err
	}
	rebalanced, moves, err := placement.Rebalance(p, a, 6)
	if err != nil {
		return err
	}
	after, err := p.Objective(rebalanced)
	if err != nil {
		return err
	}
	fmt.Printf("\ndemand burst on %q: objective %.2f -> %.2f with %d worker moves (limit 6)\n",
		p.Regions[1].Name, before, after, moves)
	printAssignment("rebalanced placement", p, rebalanced)
	return nil
}

func printAssignment(title string, p placement.Problem, a placement.Assignment) {
	fmt.Printf("-- %s --\n", title)
	utils, err := p.Utilizations(a)
	if err != nil {
		log.Fatal(err)
	}
	counts := make([][]int, len(p.Hosts))
	for h := range counts {
		counts[h] = make([]int, len(p.Regions))
	}
	for ri, ws := range a.Workers {
		for _, h := range ws {
			counts[h][ri]++
		}
	}
	for h, host := range p.Hosts {
		fmt.Printf("%-8s util %5.1f%%  workers:", host.Name, utils[h]*100)
		for ri, region := range p.Regions {
			if counts[h][ri] > 0 {
				fmt.Printf(" %s=%d", region.Name, counts[h][ri])
			}
		}
		fmt.Println()
	}
	obj, err := p.Objective(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max utilization: %.1f%%\n", obj*100)
}
