# Convenience targets; everything is plain `go` underneath.

.PHONY: test test-race vet bench bench-json bench-guard figures figures-csv examples quick-bench soak soak-smoke sweep-smoke skew-sweep

test:
	go test ./...

# Race-detector pass over the concurrency-heavy packages (the recovery
# protocol, the chaos proxy and the transport layer).
test-race:
	go test -race ./internal/runtime ./internal/chaos ./internal/transport ./internal/schedule ./internal/dataflow

vet:
	go vet ./...

# Minutes-long randomized chaos soak: stall/drip/kill faults against
# recovery-enabled regions at 16-64 workers, asserting the exactly-once
# ordered-release invariant. Summaries land in SOAK_<short-sha>.json.
soak:
	SOAK_FULL=1 SOAK_OUT="SOAK_$$(git rev-parse --short HEAD).json" \
		go test -v -timeout 30m -run 'TestSoak' ./internal/soak \
		&& echo "wrote SOAK_$$(git rev-parse --short HEAD).json"

# The CI-sized soak: one short randomized schedule, same invariants.
soak-smoke:
	go test -v -run TestSoakSmoke ./internal/soak

# Fleet-experiment smoke: drain the heterogeneous sweep-smoke matrix (two sim
# scenarios, two identical bench runs, one chaos soak) through real worker
# processes, archiving every run under results/sweep-smoke/, then prove the
# archive pipeline end to end by comparing the two bench runs under
# benchguard. The near-unbounded tolerance checks pairing and plumbing, not
# performance.
sweep-smoke:
	rm -rf results/sweep-smoke
	go run ./cmd/dispatcher -specs experiments/sweep-smoke.json \
		-results results/sweep-smoke -workers 2
	go run ./cmd/benchguard \
		-baseline results/sweep-smoke/003-bench-inproc-b32-a/result.json \
		-current results/sweep-smoke/004-bench-inproc-b32-b/result.json \
		-bench 'RegionTransport/transport=inproc' -metric tuples/s -max-drop 0.90

# Keyed-skew sweep: the hash/PKG/d-choices × Zipf-α × fan-out matrix from
# experiments/skew-sweep.json dispatched through real worker processes and
# archived under results/skew-sweep/, then gated on the headline claim: at
# α=1.5 with 16 workers, PKG must beat hash grouping by at least 1.5x
# tuples/s. (The full-benchtime archive shows ~2x; the single-run sweep
# gate leaves headroom for noisy shared runners.)
skew-sweep:
	rm -rf results/skew-sweep
	go run ./cmd/dispatcher -specs experiments/skew-sweep.json \
		-results results/skew-sweep -workers 2
	@hash=$$(jq '.bench.results[0].metrics["tuples/s"]' results/skew-sweep/*-keyed-hash-a1.5-w16/result.json); \
	pkg=$$(jq '.bench.results[0].metrics["tuples/s"]' results/skew-sweep/*-keyed-pkg-a1.5-w16/result.json); \
	awk -v h="$$hash" -v p="$$pkg" 'BEGIN { \
		if (h <= 0 || p <= 0) { print "degenerate tuples/s: hash=" h " pkg=" p; exit 1 } \
		printf "alpha=1.5 workers=16: hash %.0f tuples/s, pkg %.0f tuples/s (%.2fx)\n", h, p, p/h; \
		exit (p >= 1.5*h ? 0 : 1) }' \
		|| { echo "skew-sweep gate failed: pkg < 1.5x hash at alpha=1.5/workers=16"; exit 1; }

# One benchmark iteration per figure: a fast smoke of every reproduction.
quick-bench:
	go test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Full benchmark sweep, archived as BENCH_<short-sha>.json (same format the
# CI bench-regression job uploads), plus the raw text on stdout.
bench:
	go test -bench=. -benchmem -run '^$$' ./... | tee /tmp/bench.$$$$.txt \
		&& go run ./cmd/benchjson < /tmp/bench.$$$$.txt > "BENCH_$$(git rev-parse --short HEAD).json" \
		&& rm -f /tmp/bench.$$$$.txt \
		&& echo "wrote BENCH_$$(git rev-parse --short HEAD).json"

# Single-iteration benchmark sweep encoded as JSON (what the CI
# bench-regression job archives per commit).
bench-json:
	go test -bench=. -benchmem -benchtime=1x -run '^$$' ./... | go run ./cmd/benchjson

# Measured runs gated against the newest checked-in baseline: fails on a
# >10% tuples/s drop in merger ingest at 64 connections, in the in-proc
# transport region grid, or in the keyed-routing headline row (PKG at
# Zipf α=1.5 with 16 workers — the skew bake-off's claim) — what CI
# enforces.
bench-guard:
	go test -bench 'BenchmarkMergerIngest' -benchmem -run '^$$' ./internal/runtime \
		| go run ./cmd/benchjson > /tmp/ingest.$$$$.json \
		&& go run ./cmd/benchguard \
			-baseline "$$(ls BENCH_*.json | tail -1)" -current /tmp/ingest.$$$$.json \
			-bench 'MergerIngest/conns=64/recv=64' -metric tuples/s -max-drop 0.10; \
		rc=$$?; rm -f /tmp/ingest.$$$$.json; \
		[ $$rc -eq 0 ] || exit $$rc
	go test -bench 'BenchmarkRegionTransport' -benchmem -run '^$$' . \
		| go run ./cmd/benchjson > /tmp/region.$$$$.json \
		&& go run ./cmd/benchguard \
			-baseline "$$(ls BENCH_*.json | tail -1)" -current /tmp/region.$$$$.json \
			-bench 'RegionTransport/transport=inproc' -metric tuples/s -max-drop 0.10; \
		rc=$$?; rm -f /tmp/region.$$$$.json; \
		[ $$rc -eq 0 ] || exit $$rc
	go test -bench 'BenchmarkKeyedRouting/router=pkg$$/alpha=1.5/workers=16' -benchmem -run '^$$' . \
		| go run ./cmd/benchjson > /tmp/keyed.$$$$.json \
		&& go run ./cmd/benchguard \
			-baseline "$$(ls BENCH_*.json | tail -1)" -current /tmp/keyed.$$$$.json \
			-bench 'KeyedRouting/router=pkg/alpha=1.5/workers=16' -metric tuples/s -max-drop 0.10; \
		rc=$$?; rm -f /tmp/keyed.$$$$.json; exit $$rc

figures:
	go run ./cmd/sbench -fig all

figures-csv:
	go run ./cmd/sbench -fig all -csv figures/

examples:
	go run ./examples/quickstart
	go run ./examples/heterogeneous
	go run ./examples/clusterplacement
	go run ./examples/dataflowapp
	go run ./examples/keyedskew
