# Convenience targets; everything is plain `go` underneath.

.PHONY: test test-race vet bench bench-json figures figures-csv examples quick-bench

test:
	go test ./...

# Race-detector pass over the concurrency-heavy packages (the recovery
# protocol, the chaos proxy and the transport layer).
test-race:
	go test -race ./internal/runtime ./internal/chaos ./internal/transport ./internal/schedule

vet:
	go vet ./...

# One benchmark iteration per figure: a fast smoke of every reproduction.
quick-bench:
	go test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Full benchmark sweep, archived as BENCH_<short-sha>.json (same format the
# CI bench-regression job uploads), plus the raw text on stdout.
bench:
	go test -bench=. -benchmem -run '^$$' ./... | tee /tmp/bench.$$$$.txt \
		&& go run ./cmd/benchjson < /tmp/bench.$$$$.txt > "BENCH_$$(git rev-parse --short HEAD).json" \
		&& rm -f /tmp/bench.$$$$.txt \
		&& echo "wrote BENCH_$$(git rev-parse --short HEAD).json"

# Single-iteration benchmark sweep encoded as JSON (what the CI
# bench-regression job archives per commit).
bench-json:
	go test -bench=. -benchmem -benchtime=1x -run '^$$' ./... | go run ./cmd/benchjson

figures:
	go run ./cmd/sbench -fig all

figures-csv:
	go run ./cmd/sbench -fig all -csv figures/

examples:
	go run ./examples/quickstart
	go run ./examples/heterogeneous
	go run ./examples/clusterplacement
	go run ./examples/dataflowapp
