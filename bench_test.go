// Package streambalance_test holds the benchmark harness: one benchmark per
// figure of the paper's evaluation (run them with
// `go test -bench=. -benchmem`), plus micro-benchmarks of the model's hot
// paths and ablations of the design choices called out in DESIGN.md.
//
// Figure benchmarks execute a reduced-scale version of the experiment per
// iteration and report the headline shape of that figure as custom metrics
// (for example RR's execution time normalized to Oracle*), so a bench run
// doubles as a quick regression check on the reproduction. Full-scale
// figures are regenerated with cmd/sbench.
package streambalance_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/dataflow"
	"streambalance/internal/dispatch"
	"streambalance/internal/harness"
	"streambalance/internal/placement"
	rt "streambalance/internal/runtime"
	"streambalance/internal/sim"
	"streambalance/internal/transport"
)

// --- Figure benchmarks -----------------------------------------------------

func BenchmarkFig02BlockingRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig2Blocking(30 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(report.Rate.MeanSince(5*time.Second), "blockrate")
	}
}

func BenchmarkSec44Rerouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Sec44Reroute(120 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		var rr, reroute float64
		for _, row := range report.Rows {
			if row.BaseCost != 1000 {
				continue
			}
			switch row.Policy {
			case "RR":
				rr = row.MeanThroughput
			case "RR+reroute":
				reroute = row.MeanThroughput
			}
		}
		if rr > 0 {
			b.ReportMetric(reroute/rr, "reroute-vs-rr")
		}
	}
}

func BenchmarkFig05FixedSplits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig5FixedSplits(45 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		// Mean blocking rate of the 80/20 split: the top-left panel.
		b.ReportMetric(report.Splits[0].MeanRate, "rate@80/20")
	}
}

func BenchmarkFig08Top(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig8Top(160 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(report.Final.FinalWeights[0]), "conn0-final-weight")
	}
}

func BenchmarkFig08Bottom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig8Bottom(120 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(report.Final.FinalThroughput, "final-tput")
	}
}

// reportSweep emits RR's and LB-adaptive's normalized execution times at the
// largest fan-out of the sweep.
func reportSweep(b *testing.B, report harness.SweepReport) {
	b.Helper()
	if len(report.Points) == 0 {
		b.Fatal("empty sweep")
	}
	last := report.Points[len(report.Points)-1]
	for _, row := range last.Rows {
		switch row.Policy {
		case "RR":
			b.ReportMetric(row.NormalizedExec, "rr-norm-exec")
		case "LB-adaptive":
			b.ReportMetric(row.NormalizedExec, "lb-norm-exec")
		}
	}
}

func BenchmarkFig09Static(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig9Static(harness.SweepOptions{Sizes: []int{2, 8}, Tuples: 60_000})
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, report)
	}
}

func BenchmarkFig09Dynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig9Dynamic(harness.SweepOptions{Sizes: []int{2, 8}, Tuples: 60_000})
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, report)
	}
}

func BenchmarkFig10Static(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig10Static(harness.SweepOptions{Sizes: []int{2, 8}, Tuples: 60_000})
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, report)
	}
}

func BenchmarkFig10Dynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig10Dynamic(harness.SweepOptions{Sizes: []int{2, 8}, Tuples: 60_000})
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, report)
	}
}

func BenchmarkFig11Top(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig11Top(90 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(report.Final.FinalWeights[0])/10, "fast-share-%")
	}
}

func BenchmarkFig11Bottom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig11Bottom(harness.SweepOptions{Sizes: []int{24}})
		if err != nil {
			b.Fatal(err)
		}
		evenLB, _ := report.Lookup(24, "Even-LB")
		evenRR, _ := report.Lookup(24, "Even-RR")
		if evenRR.FinalThroughput > 0 {
			b.ReportMetric(evenLB.FinalThroughput/evenRR.FinalThroughput, "lb-vs-rr-tput")
		}
	}
}

func BenchmarkFig12Clustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig12(120 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if report.Clusters != nil {
			last := report.Clusters[len(report.Clusters)-1]
			ids := make(map[int]bool)
			for _, id := range last {
				ids[id] = true
			}
			b.ReportMetric(float64(len(ids)), "clusters")
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := harness.Fig13(harness.SweepOptions{Sizes: []int{32}})
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, report)
	}
}

// --- Model hot paths ---------------------------------------------------------

// randomFuncs builds n learned-looking rate functions over the full domain.
func randomFuncs(n int) []*core.RateFunc {
	rng := rand.New(rand.NewSource(42))
	funcs := make([]*core.RateFunc, n)
	for j := range funcs {
		f := core.NewRateFunc(core.DefaultUnits, core.DefaultSmoothingAlpha)
		knee := 10 + rng.Intn(800)
		for i := 0; i < 30; i++ {
			w := rng.Intn(core.DefaultUnits + 1)
			rate := 0.0
			if w > knee {
				rate = float64(w-knee) * 0.002
			}
			if err := f.Observe(w, rate); err != nil {
				panic(err)
			}
		}
		funcs[j] = f
	}
	return funcs
}

func benchmarkSolver(b *testing.B, solve core.Solver, n int) {
	funcs := randomFuncs(n)
	p := core.Problem{Funcs: make([]core.Func, n), Total: core.DefaultUnits}
	for j, f := range funcs {
		p.Funcs[j] = f
	}
	// Warm the prediction caches so the benchmark isolates the solver.
	for _, f := range funcs {
		f.Predict(0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveFox16(b *testing.B)    { benchmarkSolver(b, core.SolveFox, 16) }
func BenchmarkSolveFox64(b *testing.B)    { benchmarkSolver(b, core.SolveFox, 64) }
func BenchmarkSolveBisect16(b *testing.B) { benchmarkSolver(b, core.SolveBisect, 16) }
func BenchmarkSolveBisect64(b *testing.B) { benchmarkSolver(b, core.SolveBisect, 64) }

func BenchmarkRateFuncObserve(b *testing.B) {
	f := core.NewRateFunc(core.DefaultUnits, core.DefaultSmoothingAlpha)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Observe(rng.Intn(1001), rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRateFuncPredictRebuild(b *testing.B) {
	f := randomFuncs(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Decay dirties the cache, forcing a full rebuild per iteration.
		f.Decay(500, 0.9)
		f.Predict(750)
	}
}

func BenchmarkBalancerRebalance64(b *testing.B) {
	bal, err := core.NewBalancer(core.Config{Connections: 64, DecayEnabled: true})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for j := 0; j < 64; j++ {
		if err := bal.Observe(j, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bal.Observe(i%64, rng.Float64()); err != nil {
			b.Fatal(err)
		}
		if _, err := bal.Rebalance(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalancerRebalanceClustered64(b *testing.B) {
	bal, err := core.NewBalancer(core.Config{
		Connections:    64,
		DecayEnabled:   true,
		ClusterEnabled: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for j := 0; j < 64; j++ {
		if err := bal.Observe(j, rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bal.Observe(i%64, rng.Float64()); err != nil {
			b.Fatal(err)
		}
		if _, err := bal.Rebalance(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Events per second of the discrete-event engine itself.
	hosts := []sim.HostSpec{sim.SlowHost("h")}
	pes := make([]sim.PESpec, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(sim.Config{
			Hosts: hosts, PEs: pes, BaseCost: 1000,
			TotalTuples: 50_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		if m.Completed != 50_000 {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationDecay compares the final throughput of the adaptive
// balancer across decay factors on the Figure 8 (top) scenario, reported as
// a custom metric (decay 0.9 is the paper's choice).
func BenchmarkAblationDecay(b *testing.B) {
	for _, factor := range []float64{0.8, 0.9, 0.99} {
		b.Run(formatFactor(factor), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hosts := []sim.HostSpec{sim.SlowHost("h")}
				pes := []sim.PESpec{
					{Host: 0, Load: sim.StepLoad(100, 1, 20*time.Second)},
					{Host: 0},
					{Host: 0},
				}
				bal, err := core.NewBalancer(core.Config{
					Connections:  3,
					DecayEnabled: true,
					DecayFactor:  factor,
				})
				if err != nil {
					b.Fatal(err)
				}
				pol := sim.NewBalancerPolicy(bal, "LB")
				s, err := sim.New(sim.Config{
					Hosts: hosts, PEs: pes, BaseCost: 1000,
					Duration: 120 * time.Second,
					Policy:   pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				m, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if err := pol.Err(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(m.FinalThroughput, "final-tput")
			}
		})
	}
}

func formatFactor(f float64) string {
	switch f {
	case 0.8:
		return "decay=0.80"
	case 0.9:
		return "decay=0.90"
	case 0.99:
		return "decay=0.99"
	default:
		return "decay=?"
	}
}

// BenchmarkAblationSolver runs the same learned instance through both exact
// solvers; their objectives must agree, their costs differ.
func BenchmarkAblationSolver(b *testing.B) {
	funcs := randomFuncs(32)
	p := core.Problem{Funcs: make([]core.Func, len(funcs)), Total: core.DefaultUnits}
	for j, f := range funcs {
		p.Funcs[j] = f
		f.Predict(0)
	}
	fox, err := core.SolveFox(p)
	if err != nil {
		b.Fatal(err)
	}
	bisect, err := core.SolveBisect(p)
	if err != nil {
		b.Fatal(err)
	}
	if fox.Objective != bisect.Objective {
		b.Fatalf("solver disagreement: fox %v vs bisect %v", fox.Objective, bisect.Objective)
	}
	b.Run("fox", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveFox(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bisect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolveBisect(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Extension benchmarks ------------------------------------------------------

func BenchmarkDataflowRegionThroughput(b *testing.B) {
	// Tuples per second through a 4-wide balanced in-process region.
	const n = 30_000
	for i := 0; i < b.N; i++ {
		g := dataflow.NewGraph("bench")
		g.Source("src", func(seq uint64) (any, bool) {
			if seq >= n {
				return nil, false
			}
			return int(seq), true
		}).
			Map("work", func(v any) any {
				acc := v.(int) | 3
				for k := 0; k < 500; k++ {
					acc *= 1664525
				}
				if acc == 1 {
					return 0
				}
				return v
			}).
			Sink("out", func(any) {})
		plan, err := g.Plan(dataflow.PlanConfig{Width: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, err := dataflow.Execute(plan, dataflow.ExecConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Sinks["out"].Count != n {
			b.Fatal("lost tuples")
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkRegionThroughputBatched pushes tuples through a real 4-worker TCP
// region end to end — splitter, workers, merger — across send batch sizes 1
// and 32 crossed with receive batch sizes 1 and 64. The batch=1/recv=1 row is
// the fully per-tuple baseline the ISSUE's >=1.5x batched speedup is measured
// against; recv=1 vs recv=64 at fixed send batch isolates the receive side.
func BenchmarkRegionThroughputBatched(b *testing.B) {
	const (
		n       = 30_000
		workers = 4
	)
	payload := make([]byte, 64)
	for _, cfg := range []struct{ batch, recv int }{
		{1, 1}, {1, 64}, {32, 1}, {32, 64},
	} {
		b.Run(fmt.Sprintf("batch=%d/recv=%d", cfg.batch, cfg.recv), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bal, err := core.NewBalancer(core.Config{Connections: workers})
				if err != nil {
					b.Fatal(err)
				}
				ops := make([]rt.Operator, workers)
				for j := range ops {
					ops[j] = rt.Identity()
				}
				region, err := rt.NewRegion(rt.RegionConfig{
					Operators: ops,
					Source: func(seq uint64) ([]byte, bool) {
						if seq >= n {
							return nil, false
						}
						return payload, true
					},
					Balancer:       bal,
					SampleInterval: 50 * time.Millisecond,
					BatchSize:      cfg.batch,
					RecvBatchSize:  cfg.recv,
					Sink:           func(transport.Tuple, int) {},
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := region.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Released != n || !res.OrderPreserved {
					b.Fatalf("released=%d order=%v", res.Released, res.OrderPreserved)
				}
			}
			b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

func BenchmarkPlacement(b *testing.B) {
	p := placement.Problem{
		Hosts: []placement.Host{
			{Name: "f1", Slots: 16, Speed: 60},
			{Name: "f2", Slots: 16, Speed: 60},
			{Name: "s1", Slots: 8, Speed: 50},
			{Name: "s2", Slots: 8, Speed: 50},
		},
		Regions: []placement.Region{
			{Name: "a", Workers: 12, Demand: 900},
			{Name: "b", Workers: 16, Demand: 1400},
			{Name: "c", Workers: 8, Demand: 400},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := placement.Place(p)
		if err != nil {
			b.Fatal(err)
		}
		obj, err := p.Objective(a)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(obj, "max-util")
	}
}

func BenchmarkBalancerSnapshotRestore(b *testing.B) {
	bal, err := core.NewBalancer(core.Config{Connections: 64})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 64*30; i++ {
		if err := bal.Observe(i%64, rng.Float64()); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			if _, err := bal.Rebalance(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := bal.Snapshot()
		fresh, err := core.NewBalancer(core.Config{Connections: 64})
		if err != nil {
			b.Fatal(err)
		}
		if err := fresh.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionTransport is the transport grid: the same 4-worker region —
// splitter, workers, merger, balancer — on loopback TCP versus the in-process
// shared-memory transport, across send batch sizes. Identity operators keep
// the measurement on the transport itself; the in-proc rows are the headline
// zero-copy speedup over the TCP rows. Each iteration runs through the
// dispatcher's shim, so this benchmark and dispatcher bench runs measure
// byte-for-byte the same workload and their rows compare under benchguard.
func BenchmarkRegionTransport(b *testing.B) {
	const n = 30_000
	for _, kind := range []rt.TransportKind{rt.TransportTCP, rt.TransportInproc} {
		for _, batch := range []int{1, 32} {
			b.Run(fmt.Sprintf("transport=%s/batch=%d", kind, batch), func(b *testing.B) {
				spec := dispatch.BenchSpec{
					Benchmark: "region-transport",
					Transport: string(kind),
					Workers:   4,
					Batch:     batch,
					Tuples:    n,
					Payload:   64,
				}
				for i := 0; i < b.N; i++ {
					if err := dispatch.RunRegionTransportOnce(spec); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// BenchmarkKeyedRouting is the keyed bake-off grid: hash grouping versus
// partial key grouping versus PKG with the minimax balancer's blocking-rate
// penalties, across Zipf skew and fan-out, with the per-key sum combiner
// installed. Workers model per-tuple service time by sleeping, so a hash
// router's hot-key pileup shows up as real throughput loss while PKG's
// two-choice split spreads it. Rows run through the dispatcher's shim — the
// same workload `kind: bench, benchmark: keyed-routing` specs execute — so
// dispatcher archives and these rows compare under benchguard. Each row also
// reports combiner-hits: tuples absorbed into same-key carriers per
// iteration, the combiner's merger-ingest reduction.
func BenchmarkKeyedRouting(b *testing.B) {
	const n = 30_000
	for _, router := range []string{"hash", "pkg", "pkg-balanced"} {
		for _, alpha := range []float64{0.8, 1.1, 1.5} {
			for _, workers := range []int{4, 16, 64} {
				b.Run(fmt.Sprintf("router=%s/alpha=%g/workers=%d", router, alpha, workers), func(b *testing.B) {
					spec := dispatch.BenchSpec{
						Benchmark: "keyed-routing",
						Transport: "inproc",
						Router:    router,
						SkewAlpha: alpha,
						Workers:   workers,
						Tuples:    n,
						Keys:      10_000,
						Combine:   true,
						Seed:      1,
					}
					var hits uint64
					for i := 0; i < b.N; i++ {
						st, err := dispatch.RunKeyedRoutingOnce(spec)
						if err != nil {
							b.Fatal(err)
						}
						hits += st.CombinerHits
					}
					b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tuples/s")
					b.ReportMetric(float64(hits)/float64(b.N), "combiner-hits")
				})
			}
		}
	}
}

// BenchmarkChainedRegions pushes tuples through two chained 4-worker in-proc
// regions end to end — source, stage-1 merge, inter-stage edge, stage-2
// splitter, final sink — measuring what region→region composition costs on
// top of a single region.
func BenchmarkChainedRegions(b *testing.B) {
	const (
		n       = 30_000
		workers = 4
	)
	payload := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		mkStage := func() rt.RegionConfig {
			ops := make([]rt.Operator, workers)
			for j := range ops {
				ops[j] = rt.Identity()
			}
			return rt.RegionConfig{
				Transport: rt.TransportInproc,
				Operators: ops,
				BatchSize: 32,
			}
		}
		s1 := mkStage()
		s1.Source = func(seq uint64) ([]byte, bool) {
			if seq >= n {
				return nil, false
			}
			return payload, true
		}
		s2 := mkStage()
		sunk := 0
		s2.Sink = func(transport.Tuple, int) { sunk++ }
		res, err := dataflow.RunChain([]rt.RegionConfig{s1, s2}, dataflow.ChainOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if sunk != n || res.Stages[1].Released != n {
			b.Fatalf("sunk=%d released=%d", sunk, res.Stages[1].Released)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tuples/s")
}
